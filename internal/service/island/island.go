// Package island implements fault-tolerant island-model exploration: one
// job partitioned across N islands, each running the full NSGA-II/MOSA
// search from its own deterministically forked seed, with periodic
// migration of top-k front members around a fixed ring and a final merge
// of the per-island fronts through the incremental Archive.
//
// The design premise is that the merged front is a pure function of
// (job, islands, migration interval, migrant count) and nothing else —
// not of how many executors ran the islands, not of which executor ran
// which island, and not of whether any executor crashed, hung, or was
// killed mid-round. The coordinator runs islands in lock-step rounds:
// every island advances from its checkpoint to the next migration
// boundary (dse.Options.StopAfter), the coordinator exchanges migrants
// on the ring and injects them deterministically (dse.InjectMigrants),
// persists post-injection per-island checkpoints, and starts the next
// round. A crashed island attempt is retried from the in-memory
// post-injection snapshot — bit-identical replay — so failover changes
// wall-clock time, never results.
//
// Supervision is budgeted per executor: an executor whose attempts keep
// failing exhausts its restart budget and is declared lost, and its
// islands are redistributed round-robin over the survivors. When every
// executor is lost the coordinator falls back to running islands inline
// (with a final budget of its own), so the job degrades to slower — not
// wrong, and not dead — until genuinely nothing can run.
package island

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"wsndse/internal/dse"
	"wsndse/internal/service/faultinject"
	"wsndse/internal/service/snapfile"
)

// Event kinds reported through Config.OnEvent.
const (
	EventRound         = "round"          // island reached a migration boundary (or finished)
	EventMigration     = "migration"      // migrants injected into an island
	EventMigrationDrop = "migration_drop" // a ring transfer was dropped (will be retried)
	EventCrash         = "crash"          // an island attempt failed
	EventRestart       = "restart"        // the island will be retried from its checkpoint
	EventExecutorLost  = "executor_lost"  // an executor exhausted its restart budget
	EventFallback      = "fallback"       // coordinator switched to inline execution
)

// Event is one coordinator observation, published to Config.OnEvent as
// it happens (from coordinator and executor goroutines — the callback
// must be safe for concurrent use and should not block).
type Event struct {
	Kind     string `json:"kind"`
	Island   int    `json:"island"`
	Executor int    `json:"executor"` // -1: the coordinator-inline fallback
	Round    int    `json:"round"`
	Step     int    `json:"step"`
	Error    string `json:"error,omitempty"`
}

// Status is one island's supervision state, embedded in the service's
// JobInfo so /v1/jobs reports per-island attempts and restarts.
type Status struct {
	Island   int `json:"island"`
	Executor int `json:"executor"` // executor that last ran the island; -1: fallback
	Step     int `json:"step"`     // latest boundary the island has passed
	Attempts int `json:"attempts"` // round attempts started
	Restarts int `json:"restarts"` // of those, how many failed and were retried
}

// Config tunes one coordinator. The zero value of every field has a
// sensible default applied by New; only OnEvent/OnCheckpoint/Logf stay
// nil when unset.
type Config struct {
	// Islands is the number of logical islands L — the partition of the
	// search, and with Interval/Migrants the *identity* of the run: the
	// merged front depends on it. Required, >= 1.
	Islands int

	// Interval G is the migration period in search boundaries
	// (generations for NSGA-II, chain segments for MOSA): islands pause
	// at steps G, 2G, ... and exchange migrants. Default 5.
	Interval int

	// Migrants k is how many front members each island sends its ring
	// successor at every boundary. Default 4.
	Migrants int

	// Executors is how many islands run concurrently — pure parallelism,
	// with no effect on results. Defaults to Islands; clamped to
	// [1, Islands].
	Executors int

	// MaxRestarts is each executor's restart budget (and, separately,
	// the inline fallback's): an executor whose attempts fail more than
	// MaxRestarts times is lost and its islands are redistributed.
	// Default 2.
	MaxRestarts int

	// StallTimeout arms the heartbeat watchdog: an island attempt that
	// passes no search boundary for this long is cancelled and retried
	// (counting against its executor's budget). 0 disables the watchdog.
	StallTimeout time.Duration

	// CheckpointDir, when non-empty, persists every island's
	// post-injection snapshot at every migration boundary through the
	// snapfile two-slot rotation; LoadCheckpoint restores a coordinator
	// from them after a process death.
	CheckpointDir string

	// Resume restarts the whole coordinator from a composite snapshot
	// previously delivered to OnCheckpoint (or rebuilt by
	// LoadCheckpoint). The remaining rounds replay the uninterrupted
	// run's exact trajectory.
	Resume *dse.IslandSnapshot

	// OnEvent observes coordinator events; OnCheckpoint receives the
	// composite post-injection snapshot at every migration boundary
	// (the retry anchor a supervisor should keep). Both may be nil.
	OnEvent      func(Event)
	OnCheckpoint func(*dse.IslandSnapshot)

	// Logf receives best-effort diagnostics (checkpoint write failures).
	Logf func(format string, args ...any)

	// Runner executes island rounds: the in-process GoRunner by default,
	// or a ProcRunner supervising child worker processes.
	Runner Runner

	// Stats receives every island's per-boundary search telemetry
	// (tagged with the island index) when rounds run on the default
	// in-process runner or the inline fallback. It is called from
	// executor goroutines concurrently. A custom Runner that wants stats
	// must wire its own sink (GoRunner.Stats); ProcRunner rounds carry
	// none — see GoRunner's doc for why. May be nil.
	Stats func(island int, s dse.Stats)
}

// errStalled is the cancellation cause of an island attempt that stopped
// heartbeating; errNoExecutors fails the job when every executor and the
// inline fallback have exhausted their budgets.
var (
	errStalled     = errors.New("island: attempt stalled (no heartbeat within StallTimeout)")
	errNoExecutors = errors.New("island: all executors and the inline fallback exhausted their restart budgets")
)

// Coordinator drives one island-model job. Create with New, run with
// Run; Status may be polled concurrently.
type Coordinator struct {
	cfg      Config
	job      Job
	space    *dse.Space
	eval     dse.Evaluator
	runner   Runner
	fallback Runner

	mu           sync.Mutex
	status       []Status
	execRestarts []int
	execLost     []bool
	fbRestarts   int
	fbAnnounced  bool
}

// New validates the job and configuration and builds a coordinator.
func New(cfg Config, job Job, space *dse.Space, eval dse.Evaluator) (*Coordinator, error) {
	if job.Algorithm != "nsga2" && job.Algorithm != "mosa" {
		return nil, fmt.Errorf("island: algorithm %q does not support island decomposition", job.Algorithm)
	}
	if cfg.Islands < 1 {
		return nil, fmt.Errorf("island: %d islands (want >= 1)", cfg.Islands)
	}
	if cfg.Interval <= 0 {
		cfg.Interval = 5
	}
	if cfg.Migrants <= 0 {
		cfg.Migrants = 4
	}
	if cfg.Executors <= 0 || cfg.Executors > cfg.Islands {
		cfg.Executors = cfg.Islands
	}
	if cfg.MaxRestarts <= 0 {
		cfg.MaxRestarts = 2
	}
	c := &Coordinator{
		cfg:          cfg,
		job:          job,
		space:        space,
		eval:         eval,
		runner:       cfg.Runner,
		fallback:     &GoRunner{Space: space, Eval: eval, Stats: cfg.Stats},
		status:       make([]Status, cfg.Islands),
		execRestarts: make([]int, cfg.Executors),
		execLost:     make([]bool, cfg.Executors),
	}
	if c.runner == nil {
		c.runner = c.fallback
	}
	for i := range c.status {
		c.status[i] = Status{Island: i, Executor: -1}
	}
	if cfg.Resume != nil {
		if err := cfg.Resume.Validate(job.Algorithm, cfg.Islands, space); err != nil {
			return nil, err
		}
	}
	return c, nil
}

// Status returns a copy of the per-island supervision state.
func (c *Coordinator) Status() []Status {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]Status(nil), c.status...)
}

func (c *Coordinator) emit(e Event) {
	if c.cfg.OnEvent != nil {
		c.cfg.OnEvent(e)
	}
}

func (c *Coordinator) logf(format string, args ...any) {
	if c.cfg.Logf != nil {
		c.cfg.Logf(format, args...)
	}
}

// Run executes the job to completion and returns the merged front. The
// result is bit-identical across executor counts, island crashes,
// executor loss, and coordinator restarts from checkpoints — anything
// short of changing (job, Islands, Interval, Migrants).
func (c *Coordinator) Run(ctx context.Context) (*dse.Result, error) {
	total := c.job.steps()
	if total <= 0 {
		return nil, fmt.Errorf("island: job has no search boundaries")
	}
	var boundaries []int
	for b := c.cfg.Interval; b < total; b += c.cfg.Interval {
		boundaries = append(boundaries, b)
	}

	snaps := make([]*dse.Snapshot, c.cfg.Islands)
	start := 0
	if r := c.cfg.Resume; r != nil {
		copy(snaps, r.Islands)
		for start < len(boundaries) && boundaries[start] <= r.Step {
			start++
		}
		c.mu.Lock()
		for i := range c.status {
			c.status[i].Step = r.Step
		}
		c.mu.Unlock()
	}

	for idx := start; idx < len(boundaries); idx++ {
		b, round := boundaries[idx], idx+1
		resps, err := c.wave(ctx, round, b, snaps)
		if err != nil {
			return nil, err
		}
		for i, r := range resps {
			snaps[i] = r.Snapshot
		}
		if err := c.migrate(ctx, round, snaps); err != nil {
			return nil, err
		}
		c.checkpoint(round, b, snaps)
	}

	final := len(boundaries) + 1
	resps, err := c.wave(ctx, final, 0, snaps)
	if err != nil {
		return nil, err
	}
	return mergeResults(resps), nil
}

// mergeResults folds the per-island fronts through one Archive in island
// order — deterministic regardless of which island finished first.
func mergeResults(resps []*Response) *dse.Result {
	var arch dse.Archive
	out := &dse.Result{}
	for _, r := range resps {
		out.Evaluated += r.Result.Evaluated
		out.Infeasible += r.Result.Infeasible
		for _, sp := range r.Result.Front {
			arch.Add(dse.Point{Config: sp.Config, Objs: sp.Objs, Feasible: sp.Feasible})
		}
	}
	out.Front = arch.Points()
	return out
}

// wave runs every island from its current snapshot to stopAfter (0: to
// completion), supervising executors and redistributing islands as
// executors die, and returns all island responses. It is the round
// barrier: no island starts round r+1 until every island finished r.
func (c *Coordinator) wave(ctx context.Context, round, stopAfter int, snaps []*dse.Snapshot) ([]*Response, error) {
	out := make([]*Response, c.cfg.Islands)
	pending := make([]int, c.cfg.Islands)
	for i := range pending {
		pending[i] = i
	}
	for len(pending) > 0 {
		execs, runner := c.aliveExecutors()
		if execs == nil {
			return nil, errNoExecutors
		}
		assign := make(map[int][]int, len(execs))
		for n, isl := range pending {
			e := execs[n%len(execs)]
			assign[e] = append(assign[e], isl)
		}
		var (
			wg      sync.WaitGroup
			mu      sync.Mutex
			requeue []int
			fatal   error
		)
		for e, islands := range assign {
			wg.Add(1)
			go func(e int, islands []int) {
				defer wg.Done()
				for n, isl := range islands {
					for {
						resp, err := c.attempt(ctx, runner, isl, e, stopAfter, snaps[isl])
						if err == nil {
							mu.Lock()
							out[isl] = resp
							mu.Unlock()
							c.emit(Event{Kind: EventRound, Island: isl, Executor: e, Round: round, Step: c.islandStep(isl)})
							break
						}
						if ctx.Err() != nil {
							mu.Lock()
							fatal = context.Cause(ctx)
							mu.Unlock()
							return
						}
						c.emit(Event{Kind: EventCrash, Island: isl, Executor: e, Round: round, Error: err.Error()})
						if c.noteCrash(e, isl) {
							c.emit(Event{Kind: EventExecutorLost, Island: isl, Executor: e, Round: round, Error: err.Error()})
							mu.Lock()
							requeue = append(requeue, islands[n:]...)
							mu.Unlock()
							return
						}
						c.emit(Event{Kind: EventRestart, Island: isl, Executor: e, Round: round})
					}
				}
			}(e, islands)
		}
		wg.Wait()
		if fatal != nil {
			return nil, fatal
		}
		sort.Ints(requeue)
		pending = requeue
	}
	return out, nil
}

// aliveExecutors returns the executors still within budget and the
// runner to use on them; when all are lost it switches to the inline
// fallback (executor -1), and when that too is exhausted returns nil.
func (c *Coordinator) aliveExecutors() ([]int, Runner) {
	c.mu.Lock()
	var alive []int
	for e, lost := range c.execLost {
		if !lost {
			alive = append(alive, e)
		}
	}
	if len(alive) > 0 {
		c.mu.Unlock()
		return alive, c.runner
	}
	exhausted := c.fbRestarts > c.cfg.MaxRestarts
	announce := !c.fbAnnounced && !exhausted
	c.fbAnnounced = true
	c.mu.Unlock()
	if exhausted {
		return nil, nil
	}
	if announce {
		c.emit(Event{Kind: EventFallback, Island: -1, Executor: -1})
	}
	return []int{-1}, c.fallback
}

// noteCrash charges one failed attempt to the executor's budget and
// reports whether the executor is now lost.
func (c *Coordinator) noteCrash(exec, island int) (lost bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.status[island].Restarts++
	if exec < 0 {
		c.fbRestarts++
		return c.fbRestarts > c.cfg.MaxRestarts
	}
	c.execRestarts[exec]++
	if c.execRestarts[exec] > c.cfg.MaxRestarts {
		c.execLost[exec] = true
		return true
	}
	return false
}

func (c *Coordinator) islandStep(island int) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.status[island].Step
}

// attempt runs one island round on one executor, guarded by the
// heartbeat watchdog. A stalled attempt is cancelled and — if the runner
// does not honor cancellation promptly (a truly hung in-process
// evaluator cannot be preempted) — abandoned: its eventual result is
// discarded, and the island is retried from its unchanged snapshot.
func (c *Coordinator) attempt(ctx context.Context, runner Runner, island, exec, stopAfter int, resume *dse.Snapshot) (*Response, error) {
	c.mu.Lock()
	c.status[island].Attempts++
	c.status[island].Executor = exec
	c.mu.Unlock()

	actx, cancel := context.WithCancelCause(ctx)
	defer cancel(nil)
	req := Request{
		Job:       c.job,
		Island:    island,
		Executor:  exec,
		Seed:      dse.ForkSeed(c.job.Seed, island),
		StopAfter: stopAfter,
		Resume:    resume,
	}
	var beats atomic.Int64
	beat := func(step int) {
		beats.Add(1)
		c.mu.Lock()
		if step > c.status[island].Step {
			c.status[island].Step = step
		}
		c.mu.Unlock()
	}

	done := make(chan struct{})
	var resp *Response
	var rerr error
	go func() {
		defer func() {
			if p := recover(); p != nil {
				rerr = fmt.Errorf("island %d on executor %d: panic: %v", island, exec, p)
			}
			close(done)
		}()
		resp, rerr = runner.RunRound(actx, req, beat)
	}()

	if stall := c.cfg.StallTimeout; stall > 0 {
		tick := stall / 4
		if tick < time.Millisecond {
			tick = time.Millisecond
		}
		ticker := time.NewTicker(tick)
		defer ticker.Stop()
		seen, last := int64(-1), time.Now()
	watch:
		for {
			select {
			case <-done:
				break watch
			case <-ticker.C:
				if n := beats.Load(); n != seen {
					seen, last = n, time.Now()
					continue
				}
				if time.Since(last) >= stall {
					cancel(errStalled)
					select {
					case <-done:
						break watch
					case <-time.After(tick):
						// Abandoned: resp/rerr are written before
						// close(done) and we return without reading them.
						return nil, fmt.Errorf("island %d on executor %d: %w", island, exec, errStalled)
					}
				}
			}
		}
	} else {
		<-done
	}

	if rerr != nil {
		return nil, rerr
	}
	switch {
	case stopAfter > 0 && (resp == nil || resp.Snapshot == nil || resp.Snapshot.Step != stopAfter):
		return nil, fmt.Errorf("island %d: round to %d returned no snapshot at that boundary", island, stopAfter)
	case stopAfter == 0 && (resp == nil || resp.Result == nil):
		return nil, fmt.Errorf("island %d: final round returned no result", island)
	}
	return resp, nil
}

// migrate exchanges migrants on the ring: every island's outgoing set is
// computed from its boundary snapshot *before* any injection, each ring
// edge is delivered through the faultinject migration point (retrying
// dropped transfers until they succeed — skipping one would change the
// trajectory), and the sets are injected deterministically.
func (c *Coordinator) migrate(ctx context.Context, round int, snaps []*dse.Snapshot) error {
	n := len(snaps)
	if n < 2 {
		return nil
	}
	outs := make([][]dse.SnapPoint, n)
	for i, snap := range snaps {
		outs[i] = dse.MigrantsOut(snap, c.cfg.Migrants)
	}
	for from := 0; from < n; from++ {
		to := (from + 1) % n
		for {
			if err := ctx.Err(); err != nil {
				return context.Cause(ctx)
			}
			err := faultinject.Migration(c.job.JobID, round, from, to)
			if err == nil {
				break
			}
			c.emit(Event{Kind: EventMigrationDrop, Island: to, Executor: -1, Round: round, Error: err.Error()})
			time.Sleep(time.Millisecond)
		}
		inj, err := dse.InjectMigrants(c.space, snaps[to], outs[from])
		if err != nil {
			return err
		}
		snaps[to] = inj
		c.emit(Event{Kind: EventMigration, Island: to, Executor: -1, Round: round, Step: snaps[to].Step})
	}
	return nil
}

// islandBase is the snapfile base name of one island's checkpoint.
func islandBase(jobID string, island int) string {
	return fmt.Sprintf("%s.island%d.snapshot", jobID, island)
}

// checkpoint persists the post-injection state: per-island durable
// snapfiles (best-effort — a full disk costs durability, not the run)
// and the in-memory composite for the supervisor's retry path.
func (c *Coordinator) checkpoint(round, step int, snaps []*dse.Snapshot) {
	if c.cfg.CheckpointDir != "" {
		for i, snap := range snaps {
			data, err := dse.EncodeSnapshotFile(snap)
			if err == nil {
				err = snapfile.Write(c.cfg.CheckpointDir, islandBase(c.job.JobID, i), data)
			}
			if err != nil {
				c.logf("island: job %s: island %d checkpoint at step %d failed (run continues): %v",
					c.job.JobID, i, step, err)
			}
		}
	}
	if c.cfg.OnCheckpoint != nil {
		c.cfg.OnCheckpoint(&dse.IslandSnapshot{
			Version:   dse.IslandSnapshotVersion,
			Algorithm: c.job.Algorithm,
			Round:     round,
			Step:      step,
			Islands:   append([]*dse.Snapshot(nil), snaps...),
		})
	}
}

// errSlotMissing distinguishes "this checkpoint slot does not exist"
// from a real decode failure inside loadSlot.
var errSlotMissing = errors.New("island: checkpoint slot missing")

// loadSlot reads and checksum-verifies one checkpoint slot file.
func loadSlot(path string) (*dse.Snapshot, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, errSlotMissing
		}
		return nil, err
	}
	snap, err := dse.DecodeSnapshotFile(data)
	if err != nil {
		return nil, fmt.Errorf("island: snapshot %s: %w", filepath.Base(path), err)
	}
	return snap, nil
}

// LoadCheckpoint rebuilds a coordinator resume point from the per-island
// snapfiles written under dir for jobID. A crash can land mid-way
// through a checkpoint wave, leaving islands' latest slots at different
// steps, so each island contributes every step it has a verified
// snapshot for (latest and previous slots) and the most recent step
// covered by *all* islands wins. Returns an error wrapping
// os.ErrNotExist when no island has any snapshot, and the first decode
// error when files exist but no consistent set can be assembled.
func LoadCheckpoint(dir, jobID string, islands int) (*dse.IslandSnapshot, error) {
	if islands < 1 {
		return nil, fmt.Errorf("island: load checkpoint for %d islands", islands)
	}
	perStep := make([]map[int]*dse.Snapshot, islands)
	var firstErr error
	anyFile := false
	for i := 0; i < islands; i++ {
		perStep[i] = make(map[int]*dse.Snapshot)
		base := islandBase(jobID, i)
		// Collect both slots; snapfile.Load would stop at the first
		// verified one, but consistency needs all candidates.
		for _, path := range []string{snapfile.Path(dir, base), snapfile.PrevPath(dir, base)} {
			snap, err := loadSlot(path)
			if err != nil {
				if !errors.Is(err, errSlotMissing) && firstErr == nil {
					firstErr = err
				}
				continue
			}
			anyFile = true
			perStep[i][snap.Step] = snap
		}
	}
	best := -1
	for step := range perStep[0] {
		ok := true
		for i := 1; i < islands; i++ {
			if _, have := perStep[i][step]; !have {
				ok = false
				break
			}
		}
		if ok && step > best {
			best = step
		}
	}
	if best < 0 {
		if firstErr != nil {
			return nil, firstErr
		}
		if !anyFile {
			return nil, fmt.Errorf("island: no checkpoint for job %s: %w", jobID, os.ErrNotExist)
		}
		return nil, fmt.Errorf("island: job %s: no migration boundary is covered by all %d islands", jobID, islands)
	}
	comp := &dse.IslandSnapshot{
		Version: dse.IslandSnapshotVersion,
		Step:    best,
		Islands: make([]*dse.Snapshot, islands),
	}
	for i := 0; i < islands; i++ {
		comp.Islands[i] = perStep[i][best]
	}
	comp.Algorithm = comp.Islands[0].Algorithm
	return comp, nil
}
