package island

import (
	"context"
	"errors"
	"os"
	"reflect"
	"sync"
	"testing"

	"wsndse/internal/core"
	"wsndse/internal/dse"
	"wsndse/internal/service/snapfile"
)

// testSpace mirrors the dse package's test grid.
func testSpace(values ...int) *dse.Space {
	s := &dse.Space{}
	for i, n := range values {
		vals := make([]float64, n)
		for j := range vals {
			vals[j] = float64(j)
		}
		s.Params = append(s.Params, dse.Parameter{Name: string(rune('a' + i)), Values: vals})
	}
	return s
}

// testEval is the dse package's convex benchmark with an infeasible
// band; stateless, so safe for concurrent islands.
type testEval struct{ space *dse.Space }

func (e *testEval) NumObjectives() int { return 2 }
func (e *testEval) Evaluate(c dse.Config) (dse.Objectives, error) {
	if c[0]%3 == 1 {
		return nil, core.Infeasible("band %d excluded", c[0])
	}
	n := float64(len(e.space.Params[0].Values) - 1)
	t := e.space.Value(c, 0) / n
	excess := 0.0
	for i := 1; i < len(c); i++ {
		excess += e.space.Value(c, i)
	}
	excess /= 10
	return dse.Objectives{t + excess, 1 - t + excess}, nil
}

// testJob returns the canonical 4-island job and coordinator config for
// algo ("nsga2" or "mosa"), sized so each algorithm crosses three
// migration boundaries.
func testJob(algo string) (Job, Config) {
	job := Job{JobID: "t1", Scenario: "test", Algorithm: algo, Workers: 2}
	cfg := Config{Islands: 4, Migrants: 3}
	switch algo {
	case "nsga2":
		job.Seed = 9
		job.NSGA2 = &dse.NSGA2Config{PopulationSize: 16, Generations: 12}
		cfg.Interval = 3 // migrations at generations 3, 6, 9
	case "mosa":
		job.Seed = 5
		job.MOSA = &dse.MOSAConfig{Iterations: 8192, Restarts: 4} // 8 segments
		cfg.Interval = 2                                          // migrations at segments 2, 4, 6
	}
	return job, cfg
}

func runCoordinator(t *testing.T, job Job, cfg Config) *dse.Result {
	t.Helper()
	space := testSpace(12, 4, 3)
	c, err := New(cfg, job, space, &testEval{space: space})
	if err != nil {
		t.Fatal(err)
	}
	res, err := c.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Front) == 0 || res.Evaluated == 0 {
		t.Fatalf("degenerate result: %d front points, %d evaluated", len(res.Front), res.Evaluated)
	}
	return res
}

// sameResult asserts bit-identical merged results (front order included).
func sameResult(t *testing.T, a, b *dse.Result, label string) {
	t.Helper()
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("%s: results differ\n a: %d pts, %d evaluated\n b: %d pts, %d evaluated",
			label, len(a.Front), a.Evaluated, len(b.Front), b.Evaluated)
	}
}

// TestExecutorCountInvariance is the core determinism claim: the merged
// front is a function of the migration schedule, not of how many
// executors run the islands.
func TestExecutorCountInvariance(t *testing.T) {
	for _, algo := range []string{"nsga2", "mosa"} {
		t.Run(algo, func(t *testing.T) {
			job, cfg := testJob(algo)
			cfg.Executors = 1
			serial := runCoordinator(t, job, cfg)
			for _, execs := range []int{2, 4} {
				cfg.Executors = execs
				sameResult(t, serial, runCoordinator(t, job, cfg), "executors 1 vs N")
			}
		})
	}
}

// TestSingleIslandMatchesPlainRun: one island with no migration is the
// plain algorithm at the island's forked seed — the coordinator adds
// pause/resume plumbing, not trajectory.
func TestSingleIslandMatchesPlainRun(t *testing.T) {
	job, cfg := testJob("nsga2")
	cfg.Islands, cfg.Executors = 1, 1
	space := testSpace(12, 4, 3)
	eval := &testEval{space: space}

	got := runCoordinator(t, job, cfg)

	plain, err := dse.NSGA2Opts(space, eval,
		dse.NSGA2Config{PopulationSize: 16, Generations: 12, Seed: dse.ForkSeed(job.Seed, 0), Workers: 2},
		dse.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Front) != len(plain.Front) {
		t.Fatalf("coordinator front has %d pts, plain run %d", len(got.Front), len(plain.Front))
	}
	for i := range got.Front {
		if !reflect.DeepEqual(got.Front[i], plain.Front[i]) {
			t.Fatalf("front[%d] differs", i)
		}
	}
	// Evaluated is an upper bound across pause/resume (points dropped
	// from both population and archive are re-counted after resume — see
	// dse.Options.Resume), never an undercount.
	if got.Evaluated < plain.Evaluated {
		t.Fatalf("coordinator evaluated %d < plain %d", got.Evaluated, plain.Evaluated)
	}
}

// TestResumeFromComposite: restarting a coordinator from any mid-run
// OnCheckpoint composite replays the identical remainder.
func TestResumeFromComposite(t *testing.T) {
	for _, algo := range []string{"nsga2", "mosa"} {
		t.Run(algo, func(t *testing.T) {
			job, cfg := testJob(algo)
			golden := runCoordinator(t, job, cfg)

			var mu sync.Mutex
			var comps []*dse.IslandSnapshot
			cfg.OnCheckpoint = func(s *dse.IslandSnapshot) {
				mu.Lock()
				comps = append(comps, s)
				mu.Unlock()
			}
			sameResult(t, golden, runCoordinator(t, job, cfg), "checkpointing run")
			if len(comps) != 3 {
				t.Fatalf("%d composites, want 3", len(comps))
			}

			cfg.OnCheckpoint = nil
			for _, comp := range comps {
				cfg.Resume = comp
				sameResult(t, golden, runCoordinator(t, job, cfg), "resumed run")
			}
		})
	}
}

// TestLoadCheckpointRoundTrip: the durable per-island files reassemble
// into a composite that resumes bit-identically — the coordinator's
// process-death recovery path.
func TestLoadCheckpointRoundTrip(t *testing.T) {
	job, cfg := testJob("nsga2")
	golden := runCoordinator(t, job, cfg)

	dir := t.TempDir()
	cfg.CheckpointDir = dir
	sameResult(t, golden, runCoordinator(t, job, cfg), "durable-checkpoint run")

	comp, err := LoadCheckpoint(dir, job.JobID, cfg.Islands)
	if err != nil {
		t.Fatal(err)
	}
	// The latest boundary for this schedule is generation 9.
	if comp.Step != 9 {
		t.Fatalf("restored step %d, want 9", comp.Step)
	}
	if err := comp.Validate(job.Algorithm, cfg.Islands, testSpace(12, 4, 3)); err != nil {
		t.Fatal(err)
	}
	cfg.CheckpointDir = ""
	cfg.Resume = comp
	sameResult(t, golden, runCoordinator(t, job, cfg), "disk-restored run")

	if _, err := LoadCheckpoint(dir, "no-such-job", cfg.Islands); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("missing job: err = %v, want os.ErrNotExist", err)
	}
}

// TestLoadCheckpointSkewedSlots: a crash mid-checkpoint-wave leaves
// islands at different latest steps; recovery must fall back to the
// newest step *all* islands cover.
func TestLoadCheckpointSkewedSlots(t *testing.T) {
	job, cfg := testJob("nsga2")
	dir := t.TempDir()
	cfg.CheckpointDir = dir
	runCoordinator(t, job, cfg)

	// Simulate the torn wave: island 0's latest (step 9) survives, but
	// island 1 only got as far as step 6 — drop its latest slot so its
	// newest file is the prev one.
	if err := os.Rename(
		snapfile.PrevPath(dir, islandBase(job.JobID, 1)),
		snapfile.Path(dir, islandBase(job.JobID, 1)),
	); err != nil {
		t.Fatal(err)
	}
	comp, err := LoadCheckpoint(dir, job.JobID, cfg.Islands)
	if err != nil {
		t.Fatal(err)
	}
	if comp.Step != 6 {
		t.Fatalf("skewed recovery landed on step %d, want 6", comp.Step)
	}
}

func TestStatusAccounting(t *testing.T) {
	job, cfg := testJob("nsga2")
	space := testSpace(12, 4, 3)
	c, err := New(cfg, job, space, &testEval{space: space})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	for _, st := range c.Status() {
		// 3 migration rounds + the final one, no failures.
		if st.Attempts != 4 || st.Restarts != 0 {
			t.Errorf("island %d: attempts=%d restarts=%d, want 4/0", st.Island, st.Attempts, st.Restarts)
		}
		if st.Step != 12 {
			t.Errorf("island %d: step=%d, want 12", st.Island, st.Step)
		}
		if st.Executor < 0 || st.Executor >= cfg.Islands {
			t.Errorf("island %d: executor=%d", st.Island, st.Executor)
		}
	}
}

func TestNewRejectsBadConfigs(t *testing.T) {
	space := testSpace(4)
	eval := &testEval{space: space}
	if _, err := New(Config{Islands: 2}, Job{Algorithm: "exhaustive"}, space, eval); err == nil {
		t.Error("exhaustive accepted")
	}
	if _, err := New(Config{Islands: 0}, Job{Algorithm: "nsga2"}, space, eval); err == nil {
		t.Error("0 islands accepted")
	}
	bad := &dse.IslandSnapshot{Version: 99}
	if _, err := New(Config{Islands: 2, Resume: bad}, Job{Algorithm: "nsga2"}, space, eval); err == nil {
		t.Error("bad resume snapshot accepted")
	}
}
