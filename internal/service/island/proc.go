package island

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"os/exec"
	"strings"
	"time"
)

// ProcRunner executes island rounds in supervised child worker
// processes: one process per round, fed the JSON Request on stdin,
// reporting newline-delimited ProcLine messages on stdout ("beat" lines
// feed the watchdog, one "done" or "error" line ends the round). The
// process-per-round shape is what makes SIGKILL a recoverable fault: a
// killed worker loses only its current round, which the coordinator
// replays from the island's unchanged snapshot.
type ProcRunner struct {
	// Bin is the worker binary (cmd/wsn-island).
	Bin string

	// Args are prepended to the worker's command line.
	Args []string

	// OnSpawn, when non-nil, observes every worker process right after
	// start — chaos tests use the pid to SIGKILL a worker mid-round.
	OnSpawn func(island, executor, pid int)

	// WaitDelay bounds how long Wait lingers after context cancellation
	// before force-closing the pipes. Default 5s.
	WaitDelay time.Duration
}

// stderrLimit bounds how much worker stderr is kept for error reports.
const stderrLimit = 8 << 10

// RunRound implements Runner.
func (p *ProcRunner) RunRound(ctx context.Context, req Request, beat Heartbeat) (*Response, error) {
	input, err := json.Marshal(req)
	if err != nil {
		return nil, err
	}
	cmd := exec.CommandContext(ctx, p.Bin, p.Args...)
	cmd.Stdin = bytes.NewReader(input)
	var stderr limitedBuffer
	cmd.Stderr = &stderr
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		return nil, err
	}
	cmd.WaitDelay = p.WaitDelay
	if cmd.WaitDelay <= 0 {
		cmd.WaitDelay = 5 * time.Second
	}
	if err := cmd.Start(); err != nil {
		return nil, fmt.Errorf("island %d: start worker: %w", req.Island, err)
	}
	if p.OnSpawn != nil {
		p.OnSpawn(req.Island, req.Executor, cmd.Process.Pid)
	}

	var resp *Response
	var procErr error
	sc := bufio.NewScanner(stdout)
	sc.Buffer(make([]byte, 64<<10), 64<<20) // snapshots can be large
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		var msg ProcLine
		if err := json.Unmarshal(line, &msg); err != nil {
			procErr = fmt.Errorf("island %d: undecodable worker line: %v", req.Island, err)
			break
		}
		switch msg.Type {
		case "beat":
			if beat != nil {
				beat(msg.Step)
			}
		case "done":
			resp = msg.Response
		case "error":
			procErr = fmt.Errorf("island %d: worker: %s", req.Island, msg.Error)
		default:
			procErr = fmt.Errorf("island %d: unknown worker message type %q", req.Island, msg.Type)
		}
		if resp != nil || procErr != nil {
			break
		}
	}
	if scanErr := sc.Err(); scanErr != nil && procErr == nil {
		procErr = fmt.Errorf("island %d: reading worker output: %w", req.Island, scanErr)
	}
	// Drain so the worker never blocks on a full stdout pipe, then reap.
	io.Copy(io.Discard, stdout)
	waitErr := cmd.Wait()

	if procErr != nil {
		return nil, procErr
	}
	if resp == nil {
		// Killed (or exited) before reporting: the round is lost, the
		// island's snapshot is not. Surface the cause for the crash event.
		detail := strings.TrimSpace(stderr.String())
		if waitErr != nil {
			if detail != "" {
				return nil, fmt.Errorf("island %d: worker died mid-round: %v (stderr: %s)", req.Island, waitErr, detail)
			}
			return nil, fmt.Errorf("island %d: worker died mid-round: %v", req.Island, waitErr)
		}
		return nil, fmt.Errorf("island %d: worker exited without a result", req.Island)
	}
	return resp, nil
}

// limitedBuffer keeps the first stderrLimit bytes written to it.
type limitedBuffer struct {
	buf bytes.Buffer
}

func (b *limitedBuffer) Write(p []byte) (int, error) {
	n := len(p)
	if room := stderrLimit - b.buf.Len(); room > 0 {
		if len(p) > room {
			p = p[:room]
		}
		b.buf.Write(p)
	}
	return n, nil
}

func (b *limitedBuffer) String() string { return b.buf.String() }
