package island

import (
	"context"
	"os"
	"os/exec"
	"path/filepath"
	"sync"
	"sync/atomic"
	"syscall"
	"testing"

	"wsndse/internal/casestudy"
	"wsndse/internal/dse"
	"wsndse/internal/scenario"
)

// islandBinary builds cmd/wsn-island once per test binary (or uses
// $WSN_ISLAND_BIN, which CI sets to reuse one build).
func islandBinary(t *testing.T) string {
	t.Helper()
	if bin := os.Getenv("WSN_ISLAND_BIN"); bin != "" {
		return bin
	}
	binDirOnce.Do(func() {
		dir, err := os.MkdirTemp("", "wsn-island-bin")
		if err != nil {
			t.Fatal(err)
		}
		binPath = filepath.Join(dir, "wsn-island")
		out, err := exec.Command("go", "build", "-o", binPath, "wsndse/cmd/wsn-island").CombinedOutput()
		if err != nil {
			binErr = err
			t.Logf("go build wsn-island: %s", out)
		}
	})
	if binErr != nil {
		t.Fatalf("building wsn-island: %v", binErr)
	}
	return binPath
}

var (
	binDirOnce sync.Once
	binPath    string
	binErr     error
)

// procJob is a small real-scenario job: the worker process compiles the
// scenario itself, so the test must use a registered one.
func procJob() (Job, Config) {
	return Job{
			JobID:     "p1",
			Scenario:  "ecg-ward",
			Algorithm: "nsga2",
			NSGA2:     &dse.NSGA2Config{PopulationSize: 16, Generations: 12},
			Seed:      7,
			Workers:   2,
		}, Config{
			Islands:   2,
			Interval:  6, // one migration at generation 6
			Migrants:  3,
			Executors: 2,
		}
}

// compileScenario builds the in-process space/evaluator the coordinator
// needs for migration injection and front merging.
func compileScenario(t *testing.T, name string) (*dse.Space, dse.Evaluator) {
	t.Helper()
	sc, ok := scenario.Lookup(name)
	if !ok {
		t.Fatalf("scenario %q not registered", name)
	}
	problem, err := scenario.NewProblem(sc, casestudy.DefaultCalibration())
	if err != nil {
		t.Fatal(err)
	}
	compiled, err := problem.Compile()
	if err != nil {
		t.Fatal(err)
	}
	return problem.Space(), compiled.Evaluator()
}

func runProcCoordinator(t *testing.T, job Job, cfg Config) *dse.Result {
	t.Helper()
	space, eval := compileScenario(t, job.Scenario)
	c, err := New(cfg, job, space, eval)
	if err != nil {
		t.Fatal(err)
	}
	res, err := c.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestProcRunnerMatchesGoRunner: worker processes walk the identical
// trajectory as in-process islands — the wire round-trip of snapshots
// and fronts is lossless.
func TestProcRunnerMatchesGoRunner(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns worker processes")
	}
	bin := islandBinary(t)
	job, cfg := procJob()
	golden := runProcCoordinator(t, job, cfg) // GoRunner default

	cfg.Runner = &ProcRunner{Bin: bin}
	viaProc := runProcCoordinator(t, job, cfg)
	sameResult(t, golden, viaProc, "proc runner vs go runner")
}

// TestProcWorkerSigkillFailover is the headline robustness proof at the
// process level: SIGKILL a worker mid-round and the merged front is
// bit-identical to the undisturbed run.
func TestProcWorkerSigkillFailover(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns worker processes")
	}
	bin := islandBinary(t)
	job, cfg := procJob()
	golden := runProcCoordinator(t, job, cfg)

	var killed atomic.Bool
	cfg.Runner = &ProcRunner{
		Bin: bin,
		OnSpawn: func(isl, exec, pid int) {
			if isl == 1 && !killed.Swap(true) {
				syscall.Kill(pid, syscall.SIGKILL)
			}
		},
	}
	events := collectEvents(&cfg)
	survived := runProcCoordinator(t, job, cfg)
	sameResult(t, golden, survived, "SIGKILLed worker vs golden")
	if !killed.Load() {
		t.Fatal("no worker was killed")
	}
	if events(EventCrash) != 1 || events(EventRestart) != 1 {
		t.Errorf("crash=%d restart=%d, want 1/1", events(EventCrash), events(EventRestart))
	}
}
