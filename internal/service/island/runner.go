package island

import (
	"context"
	"errors"
	"fmt"

	"wsndse/internal/dse"
	"wsndse/internal/service/faultinject"
)

// Job is the immutable description of one island-model search: the
// scenario and algorithm every island runs, the base seed the per-island
// seeds fork from, and the evaluation worker count each island uses.
// It crosses the process boundary verbatim when islands run as child
// worker processes, so it carries everything a worker needs to rebuild
// the compiled evaluation pipeline on its own.
type Job struct {
	JobID     string           `json:"job_id"`
	Scenario  string           `json:"scenario"`
	Algorithm string           `json:"algorithm"` // "nsga2" or "mosa"
	NSGA2     *dse.NSGA2Config `json:"nsga2,omitempty"`
	MOSA      *dse.MOSAConfig  `json:"mosa,omitempty"`
	Seed      int64            `json:"seed"`
	Workers   int              `json:"workers,omitempty"` // evaluation workers per island
}

// steps returns the job's total boundary count (generations for NSGA-II,
// chain segments for MOSA) — the axis the migration schedule divides.
func (j Job) steps() int {
	switch j.Algorithm {
	case "nsga2":
		cfg := dse.NSGA2Config{}
		if j.NSGA2 != nil {
			cfg = *j.NSGA2
		}
		return cfg.Steps()
	case "mosa":
		cfg := dse.MOSAConfig{}
		if j.MOSA != nil {
			cfg = *j.MOSA
		}
		return cfg.Steps()
	default:
		return 0
	}
}

// Request asks a Runner to advance one island by one round: run from
// Resume (nil: a fresh start) to the StopAfter boundary (0: to
// completion). Seed is the island's forked seed; Executor identifies the
// supervision slot running the request, threaded through so injected
// faults can target an executor rather than an island.
type Request struct {
	Job       Job           `json:"job"`
	Island    int           `json:"island"`
	Executor  int           `json:"executor"`
	Seed      int64         `json:"seed"`
	StopAfter int           `json:"stop_after,omitempty"`
	Resume    *dse.Snapshot `json:"resume,omitempty"`
}

// Result is the wire form of a finished island's dse.Result.
type Result struct {
	Front      []dse.SnapPoint `json:"front"`
	Evaluated  int             `json:"evaluated"`
	Infeasible int             `json:"infeasible"`
}

// Response is one round's outcome: a paused round carries the boundary
// Snapshot (Result nil), a completed run carries the final Result
// (Snapshot nil).
type Response struct {
	Snapshot *dse.Snapshot `json:"snapshot,omitempty"`
	Result   *Result       `json:"result,omitempty"`
}

// Heartbeat is called by a Runner at every search boundary the island
// passes, from the island's goroutine (or the worker process's relay
// goroutine). The coordinator's stall watchdog feeds on it.
type Heartbeat func(step int)

// Runner executes island rounds. GoRunner runs them on a goroutine in
// this process; ProcRunner delegates to a supervised child worker
// process. Implementations must be safe for concurrent RunRound calls.
type Runner interface {
	RunRound(ctx context.Context, req Request, beat Heartbeat) (*Response, error)
}

// GoRunner runs island rounds in-process against a pre-built space and
// evaluator. The evaluator must be safe for concurrent use when the
// coordinator runs islands on more than one executor (the compiled
// scenario evaluator is; see scenario.Compiled.Evaluator).
//
// Stats, when non-nil, receives every island's per-boundary dse.Stats
// tagged with the island index — the hook the service's telemetry
// sampler attaches to. It is called from executor goroutines
// concurrently, so the sink must be safe for concurrent use. ProcRunner
// intentionally does not forward stats: a worker process's value is
// crash containment, and widening its line protocol with per-boundary
// telemetry would couple the watchdog path to the sampler.
type GoRunner struct {
	Space *dse.Space
	Eval  dse.Evaluator
	Stats func(island int, s dse.Stats)
}

// RunRound implements Runner.
func (g *GoRunner) RunRound(ctx context.Context, req Request, beat Heartbeat) (*Response, error) {
	opts := dse.Options{
		Context:   ctx,
		StopAfter: req.StopAfter,
		Progress: func(p dse.Progress) {
			faultinject.IslandBoundary(req.Job.JobID, req.Island, req.Executor, p.Step)
			if beat != nil {
				beat(p.Step)
			}
		},
		Resume: req.Resume,
	}
	if g.Stats != nil {
		opts.Stats = func(s dse.Stats) { g.Stats(req.Island, s) }
	}
	var snap *dse.Snapshot
	opts.Checkpoint = func(s *dse.Snapshot) error { snap = s; return nil }

	res, err := runAlgorithm(g.Space, g.Eval, req, opts)
	switch {
	case errors.Is(err, dse.ErrPaused):
		if snap == nil {
			return nil, fmt.Errorf("island %d paused without a snapshot", req.Island)
		}
		return &Response{Snapshot: snap}, nil
	case err != nil:
		return nil, err
	default:
		return &Response{Result: &Result{
			Front:      frontToWire(res.Front),
			Evaluated:  res.Evaluated,
			Infeasible: res.Infeasible,
		}}, nil
	}
}

// runAlgorithm dispatches one island run with the island's forked seed.
func runAlgorithm(space *dse.Space, eval dse.Evaluator, req Request, opts dse.Options) (*dse.Result, error) {
	switch req.Job.Algorithm {
	case "nsga2":
		cfg := dse.NSGA2Config{}
		if req.Job.NSGA2 != nil {
			cfg = *req.Job.NSGA2
		}
		cfg.Seed, cfg.Workers = req.Seed, req.Job.Workers
		return dse.NSGA2Opts(space, eval, cfg, opts)
	case "mosa":
		cfg := dse.MOSAConfig{}
		if req.Job.MOSA != nil {
			cfg = *req.Job.MOSA
		}
		cfg.Seed, cfg.Workers = req.Seed, req.Job.Workers
		return dse.MOSAOpts(space, eval, cfg, opts)
	default:
		return nil, fmt.Errorf("island: algorithm %q does not support island decomposition", req.Job.Algorithm)
	}
}

func frontToWire(front []dse.Point) []dse.SnapPoint {
	out := make([]dse.SnapPoint, len(front))
	for i, p := range front {
		out[i] = dse.SnapPoint{
			Config:   p.Config.Clone(),
			Objs:     append(dse.Objectives(nil), p.Objs...),
			Feasible: p.Feasible,
		}
	}
	return out
}

// ProcLine is one newline-delimited JSON message on a worker process's
// stdout: "beat" lines feed the watchdog, exactly one "done" or "error"
// line ends the round.
type ProcLine struct {
	Type     string    `json:"type"` // "beat" | "done" | "error"
	Step     int       `json:"step,omitempty"`
	Response *Response `json:"response,omitempty"`
	Error    string    `json:"error,omitempty"`
}
