package service

import (
	"context"
	"errors"
	"reflect"
	"testing"
	"time"

	"wsndse/internal/dse"
	"wsndse/internal/service/faultinject"
)

// islandSpec is the canonical 2-island service job: one migration
// boundary at generation 6, then the final merge.
func islandSpec(seed int64) Spec {
	return Spec{
		Scenario:          "ecg-ward",
		Algorithm:         AlgoNSGA2,
		Seed:              seed,
		Workers:           2,
		Islands:           2,
		MigrationInterval: 6,
		NSGA2:             &dse.NSGA2Config{PopulationSize: 16, Generations: 12},
	}
}

// runIslandJob submits spec on a fresh manager and returns the finished
// job's info and front.
func runIslandJob(t *testing.T, cfg Config, spec Spec) (JobInfo, FrontResponse) {
	t.Helper()
	m := newTestManager(t, cfg)
	defer m.Close()
	info, err := m.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	final := waitDone(t, m, info.ID)
	if final.Status != StatusDone {
		t.Fatalf("island job ended %s: %s", final.Status, final.Error)
	}
	front, err := m.Front(info.ID)
	if err != nil {
		t.Fatal(err)
	}
	return final, front
}

func sameFronts(t *testing.T, a, b FrontResponse, label string) {
	t.Helper()
	if !reflect.DeepEqual(a.Front, b.Front) || a.Evaluated != b.Evaluated || a.Infeasible != b.Infeasible {
		t.Fatalf("%s: fronts differ (%d pts %d evaluated vs %d pts %d evaluated)",
			label, len(a.Front), a.Evaluated, len(b.Front), b.Evaluated)
	}
}

// TestIslandJobLifecycle drives an island job through the Manager: it
// must finish with a front, report per-island supervision state, stream
// island events, and (having no single snapshot) report ErrNoSnapshot
// from the checkpoint endpoint.
func TestIslandJobLifecycle(t *testing.T) {
	m := newTestManager(t, Config{Workers: 1})
	defer m.Close()
	info, err := m.Submit(islandSpec(7))
	if err != nil {
		t.Fatal(err)
	}
	_, ch, cancel, err := m.SubscribeFrom(info.ID, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer cancel()
	islandEvents := 0
	for e := range ch {
		if e.Type == "island" {
			if e.Island == nil {
				t.Fatal("island event without payload")
			}
			islandEvents++
		}
	}
	if islandEvents == 0 {
		t.Error("no island events on the job stream")
	}

	final := waitDone(t, m, info.ID)
	if final.Status != StatusDone {
		t.Fatalf("status %s: %s", final.Status, final.Error)
	}
	if len(final.Islands) != 2 {
		t.Fatalf("JobInfo.Islands has %d entries, want 2", len(final.Islands))
	}
	for _, st := range final.Islands {
		if st.Step != 12 || st.Attempts < 2 {
			t.Errorf("island %d: step=%d attempts=%d, want step 12 and >= 2 attempts", st.Island, st.Step, st.Attempts)
		}
	}
	front, err := m.Front(info.ID)
	if err != nil || len(front.Front) == 0 {
		t.Fatalf("front: %v (%d points)", err, len(front.Front))
	}
	if _, err := m.Checkpoint(info.ID); !errors.Is(err, ErrNoSnapshot) {
		t.Fatalf("island job checkpoint err = %v, want ErrNoSnapshot", err)
	}
}

// TestIslandJobFailoverBitIdentical is the service-level robustness
// claim: an injected island panic mid-run is absorbed by the island
// supervisor within the same job attempt, and the merged front matches
// the undisturbed run bit for bit.
func TestIslandJobFailoverBitIdentical(t *testing.T) {
	_, golden := runIslandJob(t, Config{Workers: 1}, islandSpec(7))

	defer faultinject.Reset()
	faultinject.PanicOnIslandAtStep(1, 3, 1) // mid-round-1 on island 1
	info, front := runIslandJob(t, Config{Workers: 1}, islandSpec(7))
	sameFronts(t, golden, front, "panicked island vs golden")
	if info.Attempts != 1 {
		t.Errorf("island failover escalated to %d job attempts, want 1", info.Attempts)
	}
	restarts := 0
	for _, st := range info.Islands {
		restarts += st.Restarts
	}
	if restarts != 1 {
		t.Errorf("island restarts = %d, want 1", restarts)
	}
}

// TestIslandJobRetryResumesFromComposite: when the island supervisor
// itself gives up (every executor and the inline fallback exhausted),
// the job walks the manager's retry edge and the next attempt resumes
// from the coordinator's composite checkpoint — still bit-identical.
func TestIslandJobRetryResumesFromComposite(t *testing.T) {
	_, golden := runIslandJob(t, Config{Workers: 1}, islandSpec(7))

	defer faultinject.Reset()
	// Step 7 sits just past the migration boundary at 6, so attempt one
	// has checkpointed before the faults drain every budget: 2 executors
	// x 3 crashes + the inline fallback x 3 = 9 failed island attempts.
	faultinject.PanicOnIslandAtStep(0, 7, 9)
	spec := islandSpec(7)
	spec.MaxRetries = 1
	info, front := runIslandJob(t, Config{Workers: 1, RetryBaseDelay: time.Millisecond, RetryMaxDelay: time.Millisecond}, spec)
	sameFronts(t, golden, front, "retried island job vs golden")
	if info.Attempts != 2 {
		t.Errorf("job attempts = %d, want 2 (supervisor exhausted, manager retried)", info.Attempts)
	}
	if info.ResumedFromStep != 6 {
		t.Errorf("resumed from step %d, want 6 (the composite checkpoint)", info.ResumedFromStep)
	}
}

// TestIslandJobResumeJobAcrossManagers is the process-restart story: a
// second manager on the same checkpoint directory resumes a prior island
// job from its per-island snapfiles via spec.ResumeJob and reproduces
// the same merged front.
func TestIslandJobResumeJobAcrossManagers(t *testing.T) {
	dir := t.TempDir()
	info, golden := runIslandJob(t, Config{Workers: 1, CheckpointDir: dir}, islandSpec(7))

	spec := islandSpec(7)
	spec.ResumeJob = info.ID
	resumed, front := runIslandJob(t, Config{Workers: 1, CheckpointDir: dir}, spec)
	sameFronts(t, golden, front, "resume_job island run vs golden")
	if resumed.ResumedFromStep != 6 {
		t.Errorf("resumed from step %d, want 6 (the last migration boundary)", resumed.ResumedFromStep)
	}
}

func TestIslandSpecValidation(t *testing.T) {
	m := newTestManager(t, Config{Workers: 1})
	defer m.Close()
	base := islandSpec(7)
	mutate := func(f func(*Spec)) Spec { s := base; f(&s); return s }
	bad := []Spec{
		mutate(func(s *Spec) { s.Algorithm = AlgoExhaustive; s.NSGA2 = nil }),
		mutate(func(s *Spec) { s.Islands = maxIslands + 1 }),
		mutate(func(s *Spec) { s.Islands = -1; s.MigrationInterval = 0 }),
		mutate(func(s *Spec) { s.WarmStart = WarmStartAuto }),
		mutate(func(s *Spec) { s.CheckpointEvery = 2 }),
		mutate(func(s *Spec) { s.Resume = &dse.Snapshot{Algorithm: AlgoNSGA2} }),
		mutate(func(s *Spec) { s.Migrants = maxMigrants + 1 }),
		mutate(func(s *Spec) { s.Islands = 0 }),                                          // migration_interval without islands
		mutate(func(s *Spec) { s.Islands = 1; s.MigrationInterval = 0; s.Migrants = 4 }), // migrants without islands
		mutate(func(s *Spec) { s.ResumeJob = "j1" }),                                     // no CheckpointDir on this manager
	}
	for i, spec := range bad {
		if _, err := m.Submit(spec); err == nil {
			t.Errorf("bad island spec %d accepted: %+v", i, spec)
		}
	}
}

// TestDrainCancelsAndRejects: Drain rejects new submissions with
// ErrDraining, settles running jobs as cancelled at their next boundary,
// settles queued jobs immediately, and returns once everything is
// terminal.
func TestDrainCancelsAndRejects(t *testing.T) {
	m := newTestManager(t, Config{Workers: 1})
	defer m.Close()
	long := smallNSGA2("ecg-ward", 7)
	long.NSGA2 = &dse.NSGA2Config{PopulationSize: 16, Generations: 100000}
	running, err := m.Submit(long)
	if err != nil {
		t.Fatal(err)
	}
	queued, err := m.Submit(smallNSGA2("ecg-ward", 8))
	if err != nil {
		t.Fatal(err)
	}
	// Wait until the first job is actually running so the drain exercises
	// the cooperative-cancel path, not just the queued fast path.
	deadline := time.Now().Add(30 * time.Second)
	for {
		info, _ := m.Get(running.ID)
		if info.Status == StatusRunning {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job never started (status %s)", info.Status)
		}
		time.Sleep(time.Millisecond)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := m.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	if _, err := m.Submit(smallNSGA2("ecg-ward", 9)); !errors.Is(err, ErrDraining) {
		t.Fatalf("submit while draining: err = %v, want ErrDraining", err)
	}
	for _, id := range []string{running.ID, queued.ID} {
		info, _ := m.Get(id)
		if info.Status != StatusCancelled {
			t.Errorf("job %s status %s after drain, want cancelled", id, info.Status)
		}
	}
}
