package service

import (
	"context"
	"errors"
	"fmt"
	"log"
	"os"
	"runtime/debug"
	"sync"
	"time"

	"wsndse/internal/casestudy"
	"wsndse/internal/dse"
	"wsndse/internal/scenario"
	"wsndse/internal/service/faultinject"
	"wsndse/internal/service/island"
)

// Config parameterizes a Manager. The zero value is usable: 2 concurrent
// jobs, a 64-deep queue, no checkpoint directory (snapshots are then kept
// in memory only).
type Config struct {
	// Workers is how many jobs run concurrently (job-level parallelism;
	// each job additionally fans its evaluations over Spec.Workers).
	Workers int
	// QueueLimit bounds queued-but-not-started jobs; Submit fails fast
	// with ErrQueueFull beyond it, because an unbounded queue turns
	// overload into silent unbounded latency.
	QueueLimit int
	// CheckpointDir, when set, persists each job's latest snapshot to
	// <dir>/<jobID>.snapshot.json (atomically, via rename) so checkpoints
	// survive the process.
	CheckpointDir string
	// ResultDir, when set, makes the result store durable: finished
	// fronts are written there (atomic files plus an append-only index)
	// and a restarted Manager serves — and warm-starts from — the
	// previous process's results.
	ResultDir string
	// MaxResults bounds the result store (<= 0 selects
	// DefaultMaxResults); beyond it the least-recently-used front is
	// evicted.
	MaxResults int
	// RetryBaseDelay/RetryMaxDelay shape the backoff between retry
	// attempts of failed jobs (zero selects DefaultRetryBaseDelay/
	// DefaultRetryMaxDelay). Tests shrink them.
	RetryBaseDelay time.Duration
	RetryMaxDelay  time.Duration
	// IslandExec, when set, runs each island round of an island job
	// (Spec.Islands >= 2) in a supervised child worker process spawned
	// from this binary (cmd/wsn-island); empty runs islands in-process.
	// Either way the merged front is identical — process isolation buys
	// crash containment, not different results.
	IslandExec string
	// IslandStallTimeout arms the island coordinator's heartbeat watchdog:
	// an island attempt passing no search boundary for this long is
	// cancelled and retried. 0 disables the watchdog.
	IslandStallTimeout time.Duration
	// ObsDir, when set, persists each job's telemetry stream to
	// <dir>/<jobID>.obs in the append-only obs format (decode with
	// wsn-stats or internal/obs). Every job additionally keeps an
	// in-memory recent window serving GET /v1/jobs/{id}/stats, obs dir
	// or not.
	ObsDir string
	// ObsSampleInterval is the minimum spacing between recorded
	// telemetry samples per job (zero selects DefaultObsSampleInterval).
	// The final search boundary is always sampled.
	ObsSampleInterval time.Duration
	// Logf receives the manager's degradation log lines — checkpoint and
	// result-store write failures, retry announcements. Nil selects
	// log.Printf. These are exactly the failures the manager survives
	// rather than surfaces, so the log is their only trace.
	Logf func(format string, args ...any)
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = 2
	}
	if c.QueueLimit <= 0 {
		c.QueueLimit = 64
	}
	if c.RetryBaseDelay <= 0 {
		c.RetryBaseDelay = DefaultRetryBaseDelay
	}
	if c.RetryMaxDelay <= 0 {
		c.RetryMaxDelay = DefaultRetryMaxDelay
	}
	if c.Logf == nil {
		c.Logf = log.Printf
	}
	return c
}

// Sentinel errors of the job API.
var (
	ErrNotFound    = errors.New("service: no such job")
	ErrQueueFull   = errors.New("service: job queue is full")
	ErrClosed      = errors.New("service: manager is closed")
	ErrDraining    = errors.New("service: manager is draining")
	ErrNotFinished = errors.New("service: job has no front yet")
	ErrNoSnapshot  = errors.New("service: job has no checkpoint")
)

// job is the internal job record. mu guards info/result/snapshot; the
// lifecycle is single-writer (the manager worker running the job) but
// many-reader.
type job struct {
	mu       sync.Mutex
	info     JobInfo
	spec     Spec            // normalized, Resume intact
	ctx      context.Context // derived from the manager root; Cancel fires it
	cancel   context.CancelFunc
	runCtx   context.Context // ctx plus the job deadline; set once by runJob
	hub      *hub
	result   *dse.Result
	snapshot *dse.Snapshot
	// seeds caches the warm-start resolution of the first attempt, so a
	// retried job re-seeds from exactly the same fronts even if the store
	// gained results in between — keeping every attempt's trajectory (and
	// thus the retried job's final front) identical to attempt one's.
	seeds         []dse.Config
	seedsResolved bool
	// islandSnap is the island coordinator's latest composite checkpoint
	// (island jobs only): the resume anchor a retried attempt restarts
	// from, mirroring what snapshot does for single-search jobs.
	islandSnap *dse.IslandSnapshot
	// sampler collects the job's telemetry (ring + optional obs file);
	// created by runJob, nil while the job is still queued. met is the
	// manager's registry, threaded in so setStatus can move the
	// lifecycle gauges without a back-pointer to the Manager.
	sampler *jobSampler
	met     *metrics
	done    chan struct{}
}

// setStatus transitions the lifecycle under the job lock and publishes
// the matching event. It refuses to leave a terminal state.
func (j *job) setStatus(s Status, errMsg string) bool {
	j.mu.Lock()
	if j.info.Status.Terminal() {
		j.mu.Unlock()
		return false
	}
	prior := j.info.Status
	j.info.Status = s
	j.info.Error = errMsg
	now := time.Now()
	switch s {
	case StatusRunning:
		j.info.StartedAt = &now
	case StatusDone, StatusFailed, StatusTimedOut, StatusCancelled:
		j.info.FinishedAt = &now
		j.info.NextRetryAt = nil
	}
	attempt := j.info.Attempts
	j.mu.Unlock()
	// Lifecycle gauges move on the transition edges; the terminal
	// counters fire exactly once per job because terminal states are
	// absorbing (the guard above).
	if j.met != nil {
		if prior == StatusQueued {
			j.met.jobsQueued.Add(-1)
		}
		if prior == StatusRunning {
			j.met.jobsRunning.Add(-1)
		}
		switch {
		case s == StatusRunning:
			j.met.jobsRunning.Add(1)
		case s == StatusQueued:
			j.met.jobsQueued.Add(1)
		case s.Terminal():
			j.met.completed(s)
		}
	}
	j.hub.publish(Event{Type: "status", Status: s, Error: errMsg, Attempt: attempt})
	if s.Terminal() {
		j.hub.close()
		close(j.done)
	}
	return true
}

// Manager is the job scheduler: a bounded queue feeding a fixed pool of
// job workers, a per-job event hub, and the shared result Store. All
// methods are safe for concurrent use.
type Manager struct {
	cfg   Config
	store *Store
	met   *metrics

	mu       sync.Mutex
	jobs     map[string]*job
	order    []string
	nextID   int
	closed   bool
	draining bool

	queue chan *job
	root  context.Context
	stop  context.CancelFunc
	wg    sync.WaitGroup
}

// New starts a Manager with cfg.Workers job workers. With cfg.ResultDir
// set it reopens the persistent result store first, so fronts archived
// by a previous process are immediately queryable and warm-startable;
// a store that cannot be opened fails construction rather than silently
// degrading to amnesia.
func New(cfg Config) (*Manager, error) {
	cfg = cfg.withDefaults()
	store, err := NewStore(StoreConfig{Dir: cfg.ResultDir, MaxResults: cfg.MaxResults})
	if err != nil {
		return nil, err
	}
	// The obs directory is created once here, not per job: a sampler's
	// lazy file open must be the only per-job filesystem cost.
	if cfg.ObsDir != "" {
		if err := os.MkdirAll(cfg.ObsDir, 0o755); err != nil {
			return nil, fmt.Errorf("service: obs dir: %w", err)
		}
	}
	root, stop := context.WithCancel(context.Background())
	m := &Manager{
		cfg:   cfg,
		store: store,
		met:   newMetrics(),
		jobs:  make(map[string]*job),
		queue: make(chan *job, cfg.QueueLimit),
		root:  root,
		stop:  stop,
	}
	m.wg.Add(cfg.Workers)
	for w := 0; w < cfg.Workers; w++ {
		go func() {
			defer m.wg.Done()
			for j := range m.queue {
				m.runJob(j)
			}
		}()
	}
	return m, nil
}

// Store returns the versioned result store.
func (m *Manager) Store() *Store { return m.store }

// Close cancels every job, stops accepting submissions, and waits for the
// workers to drain. Queued jobs are marked cancelled. Obs writer
// goroutines are drained too, so every job's telemetry file is complete
// on disk when Close returns.
func (m *Manager) Close() {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		m.wg.Wait()
		m.drainSamplers()
		return
	}
	m.closed = true
	close(m.queue)
	m.mu.Unlock()
	m.stop()
	m.wg.Wait()
	m.drainSamplers()
	// Anything still non-terminal (queued jobs the workers never reached)
	// is cancelled for the record.
	m.mu.Lock()
	jobs := make([]*job, 0, len(m.order))
	for _, id := range m.order {
		jobs = append(jobs, m.jobs[id])
	}
	m.mu.Unlock()
	for _, j := range jobs {
		j.setStatus(StatusCancelled, "manager closed")
	}
	m.store.Close()
}

// drainSamplers waits for every job's obs writer goroutine to finish
// flushing. Workers must be drained first: runJob's deferred
// sampler.close is what lets a writer exit.
func (m *Manager) drainSamplers() {
	m.mu.Lock()
	samplers := make([]*jobSampler, 0, len(m.order))
	for _, id := range m.order {
		j := m.jobs[id]
		j.mu.Lock()
		if j.sampler != nil {
			samplers = append(samplers, j.sampler)
		}
		j.mu.Unlock()
	}
	m.mu.Unlock()
	for _, s := range samplers {
		s.drain()
	}
}

// Drain begins a graceful shutdown: new submissions are rejected with
// ErrDraining, every non-terminal job is cancelled cooperatively (running
// jobs stop at their next search boundary, leaving their durable
// checkpoints behind for a resume_job restart), and Drain blocks until
// every job reaches a terminal state or ctx expires. The manager keeps
// serving reads — job state, fronts, results — while and after draining;
// Close finishes the shutdown.
func (m *Manager) Drain(ctx context.Context) error {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return ErrClosed
	}
	m.draining = true
	jobs := make([]*job, 0, len(m.order))
	for _, id := range m.order {
		jobs = append(jobs, m.jobs[id])
	}
	m.mu.Unlock()
	for _, j := range jobs {
		j.cancel()
		// Jobs still queued (never started, or waiting out a retry) settle
		// immediately; running jobs settle at their next search boundary.
		j.mu.Lock()
		queued := j.info.Status == StatusQueued
		j.mu.Unlock()
		if queued {
			j.setStatus(StatusCancelled, "manager draining")
		}
	}
	for _, j := range jobs {
		select {
		case <-j.done:
		case <-ctx.Done():
			return ctx.Err()
		}
	}
	return nil
}

// Submit validates the spec and enqueues a new job, returning its info
// snapshot. It fails fast on a full queue (ErrQueueFull), a draining
// manager (ErrDraining), or a closed one (ErrClosed).
func (m *Manager) Submit(spec Spec) (JobInfo, error) {
	spec = spec.normalize()
	if err := spec.Validate(); err != nil {
		return JobInfo{}, err
	}
	// An explicit warm-start version is a provenance request; reject it
	// at submit time if the store cannot honor it, instead of failing the
	// job after it was queued. (auto degrades to a cold run, never fails.)
	if v, ok := warmStartVersion(spec.WarmStart); ok {
		if _, found := m.store.Get(v); !found {
			return JobInfo{}, fmt.Errorf("service: warm-start version %d is not in the result store", v)
		}
	}
	// resume_job reads durable checkpoint files; without a checkpoint
	// directory there is nothing it could ever find. Fail the submit, not
	// the queued job.
	if spec.ResumeJob != "" && m.cfg.CheckpointDir == "" {
		return JobInfo{}, fmt.Errorf("service: resume_job needs a server checkpoint directory (wsn-serve -checkpoint-dir)")
	}
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return JobInfo{}, ErrClosed
	}
	if m.draining {
		m.mu.Unlock()
		return JobInfo{}, ErrDraining
	}
	m.nextID++
	id := fmt.Sprintf("j%d", m.nextID)
	ctx, cancel := context.WithCancel(m.root)
	j := &job{
		spec:   spec,
		ctx:    ctx,
		cancel: cancel,
		hub:    newHub(&m.met.sseSubscribers),
		met:    m.met,
		done:   make(chan struct{}),
	}
	j.info = JobInfo{
		ID:        id,
		Spec:      publicSpec(spec),
		Status:    StatusQueued,
		CreatedAt: time.Now(),
	}
	if spec.Resume != nil {
		j.info.ResumedFromStep = spec.Resume.Step
	}
	// The queue send stays inside the critical section: it is non-blocking,
	// and m.mu is what orders it against Close's close(m.queue) — a send
	// racing the close would panic the process. The queued event precedes
	// the send so a fast worker cannot publish "running" first (the hub
	// lock is leaf-level, so publishing under m.mu is cycle-free), and a
	// rejected job was never registered, so sustained overload does not
	// accrete phantom job records.
	j.hub.publish(Event{Type: "status", Status: StatusQueued})
	select {
	case m.queue <- j:
	default:
		m.mu.Unlock()
		cancel()
		return JobInfo{}, ErrQueueFull
	}
	m.jobs[id] = j
	m.order = append(m.order, id)
	m.mu.Unlock()
	m.met.jobsSubmitted.Add(1)
	m.met.jobsQueued.Add(1)
	return j.snapshotInfo(), nil
}

// publicSpec strips the (potentially huge) resume snapshot from the spec
// echoed in JobInfo.
func publicSpec(s Spec) Spec {
	s.Resume = nil
	return s
}

// snapshotInfo returns a copy of the job's info under its lock.
func (j *job) snapshotInfo() JobInfo {
	j.mu.Lock()
	defer j.mu.Unlock()
	info := j.info
	if info.Progress != nil {
		p := *info.Progress
		info.Progress = &p
	}
	return info
}

// lookup fetches a job by id.
func (m *Manager) lookup(id string) (*job, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	return j, ok
}

// Get returns a job's current info.
func (m *Manager) Get(id string) (JobInfo, bool) {
	j, ok := m.lookup(id)
	if !ok {
		return JobInfo{}, false
	}
	return j.snapshotInfo(), true
}

// Jobs returns every job's info in submission order.
func (m *Manager) Jobs() []JobInfo {
	m.mu.Lock()
	ids := append([]string(nil), m.order...)
	m.mu.Unlock()
	out := make([]JobInfo, 0, len(ids))
	for _, id := range ids {
		if j, ok := m.lookup(id); ok {
			out = append(out, j.snapshotInfo())
		}
	}
	return out
}

// Cancel requests cooperative cancellation. Queued jobs cancel
// immediately; running jobs stop at their next search boundary, keeping
// the partial front. Cancelling a terminal job is a no-op.
func (m *Manager) Cancel(id string) error {
	j, ok := m.lookup(id)
	if !ok {
		return ErrNotFound
	}
	j.cancel()
	// If the job is still queued the worker will observe the dead context
	// before starting the search; mark it cancelled eagerly so callers see
	// the state settle without waiting for a worker to reach it.
	j.mu.Lock()
	queued := j.info.Status == StatusQueued
	j.mu.Unlock()
	if queued {
		j.setStatus(StatusCancelled, context.Canceled.Error())
	}
	return nil
}

// Wait blocks until the job reaches a terminal state or ctx expires.
func (m *Manager) Wait(ctx context.Context, id string) (JobInfo, error) {
	j, ok := m.lookup(id)
	if !ok {
		return JobInfo{}, ErrNotFound
	}
	select {
	case <-j.done:
		return j.snapshotInfo(), nil
	case <-ctx.Done():
		return j.snapshotInfo(), ctx.Err()
	}
}

// Front returns the job's Pareto front: the full result for done jobs,
// the partial front for cancelled and timed-out ones. Queued/running/
// failed jobs return ErrNotFinished (wrapped with the state, so callers
// can distinguish not-yet from never).
func (m *Manager) Front(id string) (FrontResponse, error) {
	j, ok := m.lookup(id)
	if !ok {
		return FrontResponse{}, ErrNotFound
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.result == nil {
		return FrontResponse{}, fmt.Errorf("%w (status %s)", ErrNotFinished, j.info.Status)
	}
	return FrontResponse{
		JobID:      j.info.ID,
		Status:     j.info.Status,
		Scenario:   j.spec.Scenario,
		Algorithm:  j.spec.Algorithm,
		Seed:       j.spec.Seed,
		Evaluated:  j.result.Evaluated,
		Infeasible: j.result.Infeasible,
		Front:      frontPoints(j.result.Front),
	}, nil
}

// Checkpoint returns the job's latest snapshot (from memory; the
// CheckpointDir file is its durable twin). Island jobs have no single
// snapshot — their per-island checkpoints live under CheckpointDir and a
// restart reaches them through Spec.ResumeJob — so they report
// ErrNoSnapshot here.
func (m *Manager) Checkpoint(id string) (*dse.Snapshot, error) {
	j, ok := m.lookup(id)
	if !ok {
		return nil, ErrNotFound
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.snapshot == nil {
		return nil, ErrNoSnapshot
	}
	return j.snapshot, nil
}

// Subscribe attaches to the job's event stream: replayed history plus a
// live channel (closed when the job terminates). cancel detaches early.
func (m *Manager) Subscribe(id string) (replay []Event, ch <-chan Event, cancel func(), err error) {
	return m.SubscribeFrom(id, 0)
}

// SubscribeFrom is Subscribe with the replay filtered to events after
// sequence number afterSeq — the server side of SSE resume via
// Last-Event-ID, so a reconnecting consumer never re-reads history it
// already processed. afterSeq 0 replays everything retained.
func (m *Manager) SubscribeFrom(id string, afterSeq int) (replay []Event, ch <-chan Event, cancel func(), err error) {
	j, ok := m.lookup(id)
	if !ok {
		return nil, nil, nil, ErrNotFound
	}
	replay, ch, cancel = j.hub.subscribeFrom(afterSeq)
	return replay, ch, cancel, nil
}

// runJob supervises one job on a manager worker: it runs attempts under
// panic recovery, classifies each outcome (success, cancelled, deadline,
// failure), and walks the retry edge — backoff, then re-run from the
// latest checkpoint — until the job reaches a terminal state.
func (m *Manager) runJob(j *job) {
	// Release the job's cancel context once the job is over: a child of
	// the manager root stays registered with its parent until cancelled,
	// so skipping this would leak one context node per job for the life
	// of the process.
	defer j.cancel()
	j.mu.Lock()
	status := j.info.Status
	id := j.info.ID
	j.mu.Unlock()
	if status.Terminal() {
		return // cancelled while queued
	}
	if j.ctx.Err() != nil {
		j.setStatus(StatusCancelled, j.ctx.Err().Error())
		return
	}

	// The telemetry sampler spans every attempt: the ring and obs file
	// carry one continuous series with the attempt column distinguishing
	// retries.
	sampler := newJobSampler(m.met, id, j.spec.Scenario, j.spec.Islands >= 2,
		m.cfg.ObsDir, m.cfg.ObsSampleInterval, m.cfg.Logf)
	j.mu.Lock()
	j.sampler = sampler
	j.mu.Unlock()
	defer sampler.close()

	// The deadline clock starts when the job first runs (queue wait is
	// the scheduler's fault, not the job's) and spans every retry.
	j.runCtx = j.ctx
	if d := j.spec.DeadlineSeconds; d > 0 {
		var cancel context.CancelFunc
		j.runCtx, cancel = context.WithTimeoutCause(j.ctx,
			time.Duration(d*float64(time.Second)), errJobDeadline)
		defer cancel()
	}

	for attempt := 1; ; attempt++ {
		j.mu.Lock()
		j.info.Attempts = attempt
		j.info.NextRetryAt = nil
		j.mu.Unlock()
		sampler.setAttempt(attempt)
		if !j.setStatus(StatusRunning, "") {
			return // cancelled during the retry wait, status already set
		}
		res, err := m.runAttempt(j)
		switch {
		case err == nil:
			j.mu.Lock()
			j.result = res
			j.mu.Unlock()
			m.archive(j, id, res)
			j.setStatus(StatusDone, "")
			return
		case errors.Is(err, context.DeadlineExceeded) || context.Cause(j.runCtx) == errJobDeadline:
			j.mu.Lock()
			j.result = res // partial front, like a cancelled run
			j.mu.Unlock()
			j.setStatus(StatusTimedOut, fmt.Sprintf("deadline of %gs exceeded", j.spec.DeadlineSeconds))
			return
		case errors.Is(err, context.Canceled):
			j.mu.Lock()
			j.result = res
			j.mu.Unlock()
			j.setStatus(StatusCancelled, context.Canceled.Error())
			return
		}

		// Attempt failed (error or recovered panic). Out of retries →
		// failed; otherwise walk the retry edge back to queued.
		if attempt > j.spec.MaxRetries {
			j.setStatus(StatusFailed, errMessage(err))
			return
		}
		delay := retryDelay(attempt, m.cfg.RetryBaseDelay, m.cfg.RetryMaxDelay)
		next := time.Now().Add(delay)
		j.mu.Lock()
		j.info.NextRetryAt = &next
		j.mu.Unlock()
		if !j.setStatus(StatusQueued, errMessage(err)) {
			return
		}
		m.met.retries.Add(1)
		m.cfg.Logf("service: job %s attempt %d/%d failed, retrying in %s: %v",
			id, attempt, j.spec.MaxRetries+1, delay.Round(time.Millisecond), err)
		select {
		case <-j.runCtx.Done():
			if context.Cause(j.runCtx) == errJobDeadline {
				j.setStatus(StatusTimedOut, fmt.Sprintf("deadline of %gs exceeded", j.spec.DeadlineSeconds))
			} else {
				j.setStatus(StatusCancelled, context.Canceled.Error())
			}
			return
		case <-time.After(delay):
		}
	}
}

// runAttempt executes one attempt under panic recovery: a panicking
// evaluator (or progress/checkpoint hook on the search goroutine) becomes
// a *PanicError carrying the stack, failing the attempt instead of the
// process.
func (m *Manager) runAttempt(j *job) (res *dse.Result, err error) {
	defer func() {
		if p := recover(); p != nil {
			res, err = nil, &PanicError{Value: p, Stack: debug.Stack()}
		}
	}()
	return m.execute(j)
}

// archive stores a finished job's front. Archiving failures degrade
// gracefully: the job stays done (its front is readable via /front and
// resumable via its checkpoint) and the failure is logged — a full disk
// must cost durability, not the exploration budget already spent.
func (m *Manager) archive(j *job, id string, res *dse.Result) {
	stored := StoredResult{
		JobID:       id,
		Scenario:    j.spec.Scenario,
		Algorithm:   j.spec.Algorithm,
		Objectives:  ObjectivesFull,
		Seed:        j.spec.Seed,
		Evaluated:   res.Evaluated,
		Infeasible:  res.Infeasible,
		Front:       frontPoints(res.Front),
		CompletedAt: time.Now(),
	}
	if sc, ok := scenario.Lookup(j.spec.Scenario); ok {
		stored.Fingerprint = sc.Fingerprint()
	}
	version, err := m.store.Put(stored)
	if err != nil {
		m.cfg.Logf("service: job %s: archiving result failed (front still served from memory): %v", id, err)
		return
	}
	j.mu.Lock()
	j.info.ResultVersion = version
	j.mu.Unlock()
}

// execute materializes the scenario's compiled pipeline and runs the
// spec's algorithm under the job's context with progress and checkpoint
// hooks attached.
func (m *Manager) execute(j *job) (*dse.Result, error) {
	spec := j.spec
	sc, ok := scenario.Lookup(spec.Scenario)
	if !ok {
		return nil, fmt.Errorf("scenario %q disappeared from the registry", spec.Scenario)
	}
	problem, err := scenario.NewProblem(sc, casestudy.DefaultCalibration())
	if err != nil {
		return nil, err
	}
	compiled, err := problem.Compile()
	if err != nil {
		return nil, err
	}
	eval := compiled.Evaluator()

	if spec.Islands >= 2 {
		return m.executeIslands(j, problem.Space(), eval)
	}

	// Retry attempts resume from the latest in-memory snapshot (kept in
	// sync with the durable file), falling back to the spec's own Resume.
	// Either way the trajectory from that point is deterministic, so the
	// retried job's final front matches an uninterrupted run bit for bit.
	j.mu.Lock()
	resume := j.snapshot
	j.mu.Unlock()
	if resume == nil {
		resume = spec.Resume
	}
	// resume_job: restart from the durable checkpoint a previous job left
	// in the server's checkpoint directory. A checkpoint that is missing or
	// fails verification in both slots (errors wrapping os.ErrNotExist and
	// dse.ErrCorruptSnapshot respectively) fails the job with that
	// diagnosis — silently restarting from scratch would masquerade as a
	// resume while exploring a different trajectory prefix.
	if resume == nil && spec.ResumeJob != "" {
		snap, err := LoadSnapshot(m.cfg.CheckpointDir, spec.ResumeJob)
		if err != nil {
			return nil, err
		}
		if snap.Algorithm != spec.Algorithm {
			return nil, fmt.Errorf("service: job %s checkpoint is a %s run, spec wants %s",
				spec.ResumeJob, snap.Algorithm, spec.Algorithm)
		}
		resume = snap
		j.mu.Lock()
		j.info.ResumedFromStep = snap.Step
		j.mu.Unlock()
	}

	start := time.Now()
	opts := dse.Options{
		Context: j.runCtx,
		Progress: func(p dse.Progress) {
			faultinject.Boundary(j.info.ID, spec.Algorithm, p.Step)
			elapsed := time.Since(start).Seconds()
			info := ProgressInfo{
				Step:       p.Step,
				TotalSteps: p.TotalSteps,
				Evaluated:  p.Evaluated,
				Infeasible: p.Infeasible,
				FrontSize:  len(p.Front),
				ElapsedSec: elapsed,
			}
			if elapsed > 0 {
				info.EvalsPerSec = float64(p.Evaluated) / elapsed
			}
			j.mu.Lock()
			j.info.Progress = &info
			j.mu.Unlock()
			j.hub.publish(Event{Type: "progress", Progress: &info})
		},
		CheckpointEvery: spec.CheckpointEvery,
		Resume:          resume,
	}
	j.mu.Lock()
	sampler := j.sampler
	j.mu.Unlock()
	if sampler != nil {
		opts.Stats = sampler.observeSearch
	}
	// Warm-start resolution happens here — on the worker, not at Submit —
	// so the seeds reflect the store's contents when the job actually
	// starts (a queued job can inherit fronts finished ahead of it). It
	// runs once per job, not per attempt: the resolved seeds are cached on
	// the job so a retry cannot pick up fronts archived since attempt one
	// and drift onto a different trajectory.
	if spec.Resume == nil && (spec.Algorithm == AlgoNSGA2 || spec.Algorithm == AlgoMOSA) {
		if !j.seedsResolved {
			seeds, wsInfo, err := ResolveWarmStart(m.store, spec.WarmStart,
				sc.Fingerprint(), ObjectivesFull, spec.Algorithm, spec.Scenario, problem.Space())
			if err != nil {
				return nil, err
			}
			j.seeds, j.seedsResolved = seeds, true
			if wsInfo != nil {
				j.mu.Lock()
				j.info.WarmStart = wsInfo
				j.mu.Unlock()
			}
		}
		if resume == nil {
			opts.SeedPoints = j.seeds
		}
	}
	if spec.CheckpointEvery > 0 {
		opts.Checkpoint = func(snap *dse.Snapshot) error {
			j.mu.Lock()
			j.snapshot = snap
			id := j.info.ID
			j.mu.Unlock()
			// The durable write is best-effort: a full disk (or injected
			// write failure) costs durability, not the run — the in-memory
			// snapshot above still backs retries, so log and continue.
			if m.cfg.CheckpointDir != "" {
				if err := writeSnapshotFile(m.cfg.CheckpointDir, id, snap); err != nil {
					m.cfg.Logf("service: job %s: checkpoint write at step %d failed (run continues): %v", id, snap.Step, err)
				}
			}
			return nil
		}
	}

	switch spec.Algorithm {
	case AlgoNSGA2:
		cfg := dse.NSGA2Config{}
		if spec.NSGA2 != nil {
			cfg = *spec.NSGA2
		}
		cfg.Seed, cfg.Workers = spec.Seed, spec.Workers
		return dse.NSGA2Opts(problem.Space(), eval, cfg, opts)
	case AlgoMOSA:
		cfg := dse.MOSAConfig{}
		if spec.MOSA != nil {
			cfg = *spec.MOSA
		}
		cfg.Seed, cfg.Workers = spec.Seed, spec.Workers
		return dse.MOSAOpts(problem.Space(), eval, cfg, opts)
	case AlgoExhaustive:
		return dse.ExhaustiveOpts(problem.Space(), eval, spec.MaxPoints, spec.Workers, opts)
	case AlgoRandom:
		return dse.RandomSearchOpts(problem.Space(), eval, spec.Budget, spec.Seed, spec.Workers, opts)
	default:
		return nil, fmt.Errorf("unknown algorithm %q", spec.Algorithm)
	}
}

// executeIslands runs an island job (Spec.Islands >= 2) through the
// island coordinator: the search is partitioned across supervised
// islands with deterministic ring migration, island events are published
// on the job's stream, per-island supervision state lands in
// JobInfo.Islands, and the coordinator's composite checkpoints back both
// in-process retries (j.islandSnap) and cross-process resume_job
// restarts (per-island snapfiles under Config.CheckpointDir).
func (m *Manager) executeIslands(j *job, space *dse.Space, eval dse.Evaluator) (*dse.Result, error) {
	spec := j.spec
	ijob := island.Job{
		JobID:     j.info.ID,
		Scenario:  spec.Scenario,
		Algorithm: spec.Algorithm,
		NSGA2:     spec.NSGA2,
		MOSA:      spec.MOSA,
		Seed:      spec.Seed,
		Workers:   spec.Workers,
	}
	cfg := island.Config{
		Islands:       spec.Islands,
		Interval:      spec.MigrationInterval,
		Migrants:      spec.Migrants,
		StallTimeout:  m.cfg.IslandStallTimeout,
		CheckpointDir: m.cfg.CheckpointDir,
		Logf:          m.cfg.Logf,
	}
	j.mu.Lock()
	sampler := j.sampler
	j.mu.Unlock()
	if sampler != nil {
		cfg.Stats = sampler.observeIsland
	}
	if m.cfg.IslandExec != "" {
		cfg.Runner = &island.ProcRunner{Bin: m.cfg.IslandExec}
	}

	// Retry attempts resume from the coordinator's latest composite
	// checkpoint; a resume_job restart reassembles one from the previous
	// job's per-island snapfiles (the newest migration boundary every
	// island has a verified snapshot for). Missing or corrupt checkpoints
	// fail the job with that diagnosis, exactly like the single-search
	// resume_job path.
	j.mu.Lock()
	resume := j.islandSnap
	j.mu.Unlock()
	if resume == nil && spec.ResumeJob != "" {
		comp, err := island.LoadCheckpoint(m.cfg.CheckpointDir, spec.ResumeJob, spec.Islands)
		if err != nil {
			return nil, err
		}
		resume = comp
	}
	cfg.Resume = resume
	if resume != nil {
		j.mu.Lock()
		j.info.ResumedFromStep = resume.Step
		j.mu.Unlock()
	}
	cfg.OnCheckpoint = func(s *dse.IslandSnapshot) {
		j.mu.Lock()
		j.islandSnap = s
		j.mu.Unlock()
	}

	// OnEvent fires from coordinator and executor goroutines, all spawned
	// inside Run — strictly after coord is assigned below.
	var coord *island.Coordinator
	cfg.OnEvent = func(e island.Event) {
		sts := coord.Status()
		switch e.Kind {
		case island.EventRound:
			m.met.islandRounds.Add(1)
		case island.EventRestart:
			m.met.islandRestarts.Add(1)
		}
		if sampler != nil {
			restarts := 0
			for _, st := range sts {
				restarts += st.Restarts
			}
			sampler.setIsland(e.Round, restarts)
		}
		j.mu.Lock()
		j.info.Islands = sts
		j.mu.Unlock()
		ev := e
		j.hub.publish(Event{Type: "island", Island: &ev})
	}

	coord, err := island.New(cfg, ijob, space, eval)
	if err != nil {
		return nil, err
	}
	j.mu.Lock()
	j.info.Islands = coord.Status()
	j.mu.Unlock()
	res, runErr := coord.Run(j.runCtx)
	j.mu.Lock()
	j.info.Islands = coord.Status()
	j.mu.Unlock()
	return res, runErr
}
