package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"

	"wsndse/internal/casestudy"
	"wsndse/internal/dse"
	"wsndse/internal/scenario"
)

// Config parameterizes a Manager. The zero value is usable: 2 concurrent
// jobs, a 64-deep queue, no checkpoint directory (snapshots are then kept
// in memory only).
type Config struct {
	// Workers is how many jobs run concurrently (job-level parallelism;
	// each job additionally fans its evaluations over Spec.Workers).
	Workers int
	// QueueLimit bounds queued-but-not-started jobs; Submit fails fast
	// with ErrQueueFull beyond it, because an unbounded queue turns
	// overload into silent unbounded latency.
	QueueLimit int
	// CheckpointDir, when set, persists each job's latest snapshot to
	// <dir>/<jobID>.snapshot.json (atomically, via rename) so checkpoints
	// survive the process.
	CheckpointDir string
	// ResultDir, when set, makes the result store durable: finished
	// fronts are written there (atomic files plus an append-only index)
	// and a restarted Manager serves — and warm-starts from — the
	// previous process's results.
	ResultDir string
	// MaxResults bounds the result store (<= 0 selects
	// DefaultMaxResults); beyond it the least-recently-used front is
	// evicted.
	MaxResults int
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = 2
	}
	if c.QueueLimit <= 0 {
		c.QueueLimit = 64
	}
	return c
}

// Sentinel errors of the job API.
var (
	ErrNotFound    = errors.New("service: no such job")
	ErrQueueFull   = errors.New("service: job queue is full")
	ErrClosed      = errors.New("service: manager is closed")
	ErrNotFinished = errors.New("service: job has no front yet")
	ErrNoSnapshot  = errors.New("service: job has no checkpoint")
)

// job is the internal job record. mu guards info/result/snapshot; the
// lifecycle is single-writer (the manager worker running the job) but
// many-reader.
type job struct {
	mu       sync.Mutex
	info     JobInfo
	spec     Spec            // normalized, Resume intact
	ctx      context.Context // derived from the manager root; Cancel fires it
	cancel   context.CancelFunc
	hub      *hub
	result   *dse.Result
	snapshot *dse.Snapshot
	done     chan struct{}
}

// setStatus transitions the lifecycle under the job lock and publishes
// the matching event. It refuses to leave a terminal state.
func (j *job) setStatus(s Status, errMsg string) bool {
	j.mu.Lock()
	if j.info.Status.Terminal() {
		j.mu.Unlock()
		return false
	}
	j.info.Status = s
	j.info.Error = errMsg
	now := time.Now()
	switch s {
	case StatusRunning:
		j.info.StartedAt = &now
	case StatusDone, StatusFailed, StatusCancelled:
		j.info.FinishedAt = &now
	}
	j.mu.Unlock()
	j.hub.publish(Event{Type: "status", Status: s, Error: errMsg})
	if s.Terminal() {
		j.hub.close()
		close(j.done)
	}
	return true
}

// Manager is the job scheduler: a bounded queue feeding a fixed pool of
// job workers, a per-job event hub, and the shared result Store. All
// methods are safe for concurrent use.
type Manager struct {
	cfg   Config
	store *Store

	mu     sync.Mutex
	jobs   map[string]*job
	order  []string
	nextID int
	closed bool

	queue chan *job
	root  context.Context
	stop  context.CancelFunc
	wg    sync.WaitGroup
}

// New starts a Manager with cfg.Workers job workers. With cfg.ResultDir
// set it reopens the persistent result store first, so fronts archived
// by a previous process are immediately queryable and warm-startable;
// a store that cannot be opened fails construction rather than silently
// degrading to amnesia.
func New(cfg Config) (*Manager, error) {
	cfg = cfg.withDefaults()
	store, err := NewStore(StoreConfig{Dir: cfg.ResultDir, MaxResults: cfg.MaxResults})
	if err != nil {
		return nil, err
	}
	root, stop := context.WithCancel(context.Background())
	m := &Manager{
		cfg:   cfg,
		store: store,
		jobs:  make(map[string]*job),
		queue: make(chan *job, cfg.QueueLimit),
		root:  root,
		stop:  stop,
	}
	m.wg.Add(cfg.Workers)
	for w := 0; w < cfg.Workers; w++ {
		go func() {
			defer m.wg.Done()
			for j := range m.queue {
				m.runJob(j)
			}
		}()
	}
	return m, nil
}

// Store returns the versioned result store.
func (m *Manager) Store() *Store { return m.store }

// Close cancels every job, stops accepting submissions, and waits for the
// workers to drain. Queued jobs are marked cancelled.
func (m *Manager) Close() {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		m.wg.Wait()
		return
	}
	m.closed = true
	close(m.queue)
	m.mu.Unlock()
	m.stop()
	m.wg.Wait()
	// Anything still non-terminal (queued jobs the workers never reached)
	// is cancelled for the record.
	m.mu.Lock()
	jobs := make([]*job, 0, len(m.order))
	for _, id := range m.order {
		jobs = append(jobs, m.jobs[id])
	}
	m.mu.Unlock()
	for _, j := range jobs {
		j.setStatus(StatusCancelled, "manager closed")
	}
	m.store.Close()
}

// Submit validates the spec and enqueues a new job, returning its info
// snapshot. It fails fast on a full queue (ErrQueueFull) or closed
// manager (ErrClosed).
func (m *Manager) Submit(spec Spec) (JobInfo, error) {
	spec = spec.normalize()
	if err := spec.Validate(); err != nil {
		return JobInfo{}, err
	}
	// An explicit warm-start version is a provenance request; reject it
	// at submit time if the store cannot honor it, instead of failing the
	// job after it was queued. (auto degrades to a cold run, never fails.)
	if v, ok := warmStartVersion(spec.WarmStart); ok {
		if _, found := m.store.Get(v); !found {
			return JobInfo{}, fmt.Errorf("service: warm-start version %d is not in the result store", v)
		}
	}
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return JobInfo{}, ErrClosed
	}
	m.nextID++
	id := fmt.Sprintf("j%d", m.nextID)
	ctx, cancel := context.WithCancel(m.root)
	j := &job{
		spec:   spec,
		ctx:    ctx,
		cancel: cancel,
		hub:    newHub(),
		done:   make(chan struct{}),
	}
	j.info = JobInfo{
		ID:        id,
		Spec:      publicSpec(spec),
		Status:    StatusQueued,
		CreatedAt: time.Now(),
	}
	if spec.Resume != nil {
		j.info.ResumedFromStep = spec.Resume.Step
	}
	// The queue send stays inside the critical section: it is non-blocking,
	// and m.mu is what orders it against Close's close(m.queue) — a send
	// racing the close would panic the process. The queued event precedes
	// the send so a fast worker cannot publish "running" first (the hub
	// lock is leaf-level, so publishing under m.mu is cycle-free), and a
	// rejected job was never registered, so sustained overload does not
	// accrete phantom job records.
	j.hub.publish(Event{Type: "status", Status: StatusQueued})
	select {
	case m.queue <- j:
	default:
		m.mu.Unlock()
		cancel()
		return JobInfo{}, ErrQueueFull
	}
	m.jobs[id] = j
	m.order = append(m.order, id)
	m.mu.Unlock()
	return j.snapshotInfo(), nil
}

// publicSpec strips the (potentially huge) resume snapshot from the spec
// echoed in JobInfo.
func publicSpec(s Spec) Spec {
	s.Resume = nil
	return s
}

// snapshotInfo returns a copy of the job's info under its lock.
func (j *job) snapshotInfo() JobInfo {
	j.mu.Lock()
	defer j.mu.Unlock()
	info := j.info
	if info.Progress != nil {
		p := *info.Progress
		info.Progress = &p
	}
	return info
}

// lookup fetches a job by id.
func (m *Manager) lookup(id string) (*job, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	return j, ok
}

// Get returns a job's current info.
func (m *Manager) Get(id string) (JobInfo, bool) {
	j, ok := m.lookup(id)
	if !ok {
		return JobInfo{}, false
	}
	return j.snapshotInfo(), true
}

// Jobs returns every job's info in submission order.
func (m *Manager) Jobs() []JobInfo {
	m.mu.Lock()
	ids := append([]string(nil), m.order...)
	m.mu.Unlock()
	out := make([]JobInfo, 0, len(ids))
	for _, id := range ids {
		if j, ok := m.lookup(id); ok {
			out = append(out, j.snapshotInfo())
		}
	}
	return out
}

// Cancel requests cooperative cancellation. Queued jobs cancel
// immediately; running jobs stop at their next search boundary, keeping
// the partial front. Cancelling a terminal job is a no-op.
func (m *Manager) Cancel(id string) error {
	j, ok := m.lookup(id)
	if !ok {
		return ErrNotFound
	}
	j.cancel()
	// If the job is still queued the worker will observe the dead context
	// before starting the search; mark it cancelled eagerly so callers see
	// the state settle without waiting for a worker to reach it.
	j.mu.Lock()
	queued := j.info.Status == StatusQueued
	j.mu.Unlock()
	if queued {
		j.setStatus(StatusCancelled, context.Canceled.Error())
	}
	return nil
}

// Wait blocks until the job reaches a terminal state or ctx expires.
func (m *Manager) Wait(ctx context.Context, id string) (JobInfo, error) {
	j, ok := m.lookup(id)
	if !ok {
		return JobInfo{}, ErrNotFound
	}
	select {
	case <-j.done:
		return j.snapshotInfo(), nil
	case <-ctx.Done():
		return j.snapshotInfo(), ctx.Err()
	}
}

// Front returns the job's Pareto front: the full result for done jobs,
// the partial front for cancelled ones. Queued/running/failed jobs return
// ErrNotFinished (wrapped with the state, so callers can distinguish
// not-yet from never).
func (m *Manager) Front(id string) (FrontResponse, error) {
	j, ok := m.lookup(id)
	if !ok {
		return FrontResponse{}, ErrNotFound
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.result == nil {
		return FrontResponse{}, fmt.Errorf("%w (status %s)", ErrNotFinished, j.info.Status)
	}
	return FrontResponse{
		JobID:      j.info.ID,
		Status:     j.info.Status,
		Scenario:   j.spec.Scenario,
		Algorithm:  j.spec.Algorithm,
		Seed:       j.spec.Seed,
		Evaluated:  j.result.Evaluated,
		Infeasible: j.result.Infeasible,
		Front:      frontPoints(j.result.Front),
	}, nil
}

// Checkpoint returns the job's latest snapshot (from memory; the
// CheckpointDir file is its durable twin).
func (m *Manager) Checkpoint(id string) (*dse.Snapshot, error) {
	j, ok := m.lookup(id)
	if !ok {
		return nil, ErrNotFound
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.snapshot == nil {
		return nil, ErrNoSnapshot
	}
	return j.snapshot, nil
}

// Subscribe attaches to the job's event stream: replayed history plus a
// live channel (closed when the job terminates). cancel detaches early.
func (m *Manager) Subscribe(id string) (replay []Event, ch <-chan Event, cancel func(), err error) {
	j, ok := m.lookup(id)
	if !ok {
		return nil, nil, nil, ErrNotFound
	}
	replay, ch, cancel = j.hub.subscribe()
	return replay, ch, cancel, nil
}

// runJob executes one job on a manager worker.
func (m *Manager) runJob(j *job) {
	// Release the job's cancel context once the job is over: a child of
	// the manager root stays registered with its parent until cancelled,
	// so skipping this would leak one context node per job for the life
	// of the process.
	defer j.cancel()
	j.mu.Lock()
	status := j.info.Status
	j.mu.Unlock()
	if status.Terminal() {
		return // cancelled while queued
	}
	if j.ctx.Err() != nil {
		j.setStatus(StatusCancelled, j.ctx.Err().Error())
		return
	}
	if !j.setStatus(StatusRunning, "") {
		return
	}
	res, err := m.execute(j)
	j.mu.Lock()
	j.result = res
	id := j.info.ID
	j.mu.Unlock()
	switch {
	case err == nil:
		stored := StoredResult{
			JobID:       id,
			Scenario:    j.spec.Scenario,
			Algorithm:   j.spec.Algorithm,
			Objectives:  ObjectivesFull,
			Seed:        j.spec.Seed,
			Evaluated:   res.Evaluated,
			Infeasible:  res.Infeasible,
			Front:       frontPoints(res.Front),
			CompletedAt: time.Now(),
		}
		if sc, ok := scenario.Lookup(j.spec.Scenario); ok {
			stored.Fingerprint = sc.Fingerprint()
		}
		version, perr := m.store.Put(stored)
		if perr != nil {
			// The search succeeded but its result cannot be archived: fail
			// the job loudly (the front is still readable via /front) —
			// same philosophy as checkpoint-write failures aborting runs.
			j.setStatus(StatusFailed, fmt.Sprintf("archiving result: %v", perr))
			return
		}
		j.mu.Lock()
		j.info.ResultVersion = version
		j.mu.Unlock()
		j.setStatus(StatusDone, "")
	case errors.Is(err, context.Canceled):
		j.setStatus(StatusCancelled, context.Canceled.Error())
	default:
		j.setStatus(StatusFailed, err.Error())
	}
}

// execute materializes the scenario's compiled pipeline and runs the
// spec's algorithm under the job's context with progress and checkpoint
// hooks attached.
func (m *Manager) execute(j *job) (*dse.Result, error) {
	spec := j.spec
	sc, ok := scenario.Lookup(spec.Scenario)
	if !ok {
		return nil, fmt.Errorf("scenario %q disappeared from the registry", spec.Scenario)
	}
	problem, err := scenario.NewProblem(sc, casestudy.DefaultCalibration())
	if err != nil {
		return nil, err
	}
	compiled, err := problem.Compile()
	if err != nil {
		return nil, err
	}
	eval := compiled.Evaluator()

	start := time.Now()
	opts := dse.Options{
		Context: j.ctx,
		Progress: func(p dse.Progress) {
			elapsed := time.Since(start).Seconds()
			info := ProgressInfo{
				Step:       p.Step,
				TotalSteps: p.TotalSteps,
				Evaluated:  p.Evaluated,
				Infeasible: p.Infeasible,
				FrontSize:  len(p.Front),
				ElapsedSec: elapsed,
			}
			if elapsed > 0 {
				info.EvalsPerSec = float64(p.Evaluated) / elapsed
			}
			j.mu.Lock()
			j.info.Progress = &info
			j.mu.Unlock()
			j.hub.publish(Event{Type: "progress", Progress: &info})
		},
		CheckpointEvery: spec.CheckpointEvery,
		Resume:          spec.Resume,
	}
	// Warm-start resolution happens here — on the worker, not at Submit —
	// so the seeds reflect the store's contents when the job actually
	// starts (a queued job can inherit fronts finished ahead of it).
	if spec.Resume == nil && (spec.Algorithm == AlgoNSGA2 || spec.Algorithm == AlgoMOSA) {
		seeds, wsInfo, err := ResolveWarmStart(m.store, spec.WarmStart,
			sc.Fingerprint(), ObjectivesFull, spec.Algorithm, spec.Scenario, problem.Space())
		if err != nil {
			return nil, err
		}
		opts.SeedPoints = seeds
		if wsInfo != nil {
			j.mu.Lock()
			j.info.WarmStart = wsInfo
			j.mu.Unlock()
		}
	}
	if spec.CheckpointEvery > 0 {
		opts.Checkpoint = func(snap *dse.Snapshot) error {
			j.mu.Lock()
			j.snapshot = snap
			id := j.info.ID
			j.mu.Unlock()
			if m.cfg.CheckpointDir != "" {
				return writeSnapshotFile(m.cfg.CheckpointDir, id, snap)
			}
			return nil
		}
	}

	switch spec.Algorithm {
	case AlgoNSGA2:
		cfg := dse.NSGA2Config{}
		if spec.NSGA2 != nil {
			cfg = *spec.NSGA2
		}
		cfg.Seed, cfg.Workers = spec.Seed, spec.Workers
		return dse.NSGA2Opts(problem.Space(), eval, cfg, opts)
	case AlgoMOSA:
		cfg := dse.MOSAConfig{}
		if spec.MOSA != nil {
			cfg = *spec.MOSA
		}
		cfg.Seed, cfg.Workers = spec.Seed, spec.Workers
		return dse.MOSAOpts(problem.Space(), eval, cfg, opts)
	case AlgoExhaustive:
		return dse.ExhaustiveOpts(problem.Space(), eval, spec.MaxPoints, spec.Workers, opts)
	case AlgoRandom:
		return dse.RandomSearchOpts(problem.Space(), eval, spec.Budget, spec.Seed, spec.Workers, opts)
	default:
		return nil, fmt.Errorf("unknown algorithm %q", spec.Algorithm)
	}
}

// writeSnapshotFile persists a snapshot atomically (write to a temp file,
// then rename) so a crash mid-write never leaves a truncated checkpoint.
func writeSnapshotFile(dir, id string, snap *dse.Snapshot) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	data, err := json.Marshal(snap)
	if err != nil {
		return err
	}
	path := filepath.Join(dir, id+".snapshot.json")
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

// LoadSnapshot reads a snapshot previously persisted by a Manager with
// CheckpointDir set — the resume path for jobs that outlived the process.
func LoadSnapshot(dir, id string) (*dse.Snapshot, error) {
	data, err := os.ReadFile(filepath.Join(dir, id+".snapshot.json"))
	if err != nil {
		return nil, err
	}
	snap := &dse.Snapshot{}
	if err := json.Unmarshal(data, snap); err != nil {
		return nil, fmt.Errorf("service: corrupt snapshot for %s: %w", id, err)
	}
	return snap, nil
}
