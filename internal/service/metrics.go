package service

import (
	"fmt"
	"io"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// metrics is the manager's process-wide telemetry registry: lock-free
// atomic counters and gauges updated on job lifecycle edges, search
// boundaries, SSE subscriptions and store evictions, scraped by
// Manager.WriteMetrics in Prometheus text exposition format. Everything
// on the update side is a single atomic add (label lookups are cached by
// the caller), so the registry costs nothing measurable on the job hot
// path; the scrape side may allocate freely.
type metrics struct {
	start time.Time

	jobsSubmitted atomic.Int64
	jobsQueued    atomic.Int64 // gauge: queued or waiting out a retry
	jobsRunning   atomic.Int64 // gauge
	jobsDone      atomic.Int64
	jobsFailed    atomic.Int64
	jobsTimedOut  atomic.Int64
	jobsCancelled atomic.Int64
	retries       atomic.Int64

	evals          labeledCounter // distinct evaluations, by scenario
	sseSubscribers atomic.Int64   // gauge

	islandRounds   atomic.Int64
	islandRestarts atomic.Int64

	obsSamples atomic.Int64
	obsBytes   atomic.Int64

	httpRequests labeledCounter // by `method="GET",code="200"` label pair
}

func newMetrics() *metrics {
	return &metrics{start: time.Now()}
}

// completed bumps the terminal-status counter matching s.
func (mt *metrics) completed(s Status) {
	switch s {
	case StatusDone:
		mt.jobsDone.Add(1)
	case StatusFailed:
		mt.jobsFailed.Add(1)
	case StatusTimedOut:
		mt.jobsTimedOut.Add(1)
	case StatusCancelled:
		mt.jobsCancelled.Add(1)
	}
}

// labeledCounter is a counter family keyed by a rendered label string
// (e.g. `scenario="ecg-ward"`). Get returns the label's atomic cell so
// hot paths resolve their label once and then pay only the atomic add.
type labeledCounter struct {
	mu    sync.Mutex
	cells map[string]*atomic.Int64
}

func (c *labeledCounter) get(label string) *atomic.Int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.cells == nil {
		c.cells = make(map[string]*atomic.Int64)
	}
	cell, ok := c.cells[label]
	if !ok {
		cell = &atomic.Int64{}
		c.cells[label] = cell
	}
	return cell
}

// snapshot returns the family's labels in sorted order, so scrapes are
// deterministic.
func (c *labeledCounter) snapshot() (labels []string, values []int64) {
	c.mu.Lock()
	labels = make([]string, 0, len(c.cells))
	for l := range c.cells {
		labels = append(labels, l)
	}
	c.mu.Unlock()
	sort.Strings(labels)
	values = make([]int64, len(labels))
	for i, l := range labels {
		values[i] = c.cells[l].Load()
	}
	return labels, values
}

// ObserveHTTPRequest counts one finished HTTP request into the
// wsndse_http_requests_total family. The serving layer (wsn-serve's
// access-log middleware) calls it; method is the HTTP verb, status the
// response code.
func (m *Manager) ObserveHTTPRequest(method string, status int) {
	m.met.httpRequests.get(fmt.Sprintf("method=%q,code=\"%d\"", method, status)).Add(1)
}

// WriteMetrics renders the service's telemetry in Prometheus text
// exposition format (text/plain; version=0.0.4): job lifecycle counters
// and gauges, queue depth, per-scenario evaluation totals, SSE
// subscriber and result-store gauges, island supervision counters,
// obs-stream volume, HTTP traffic, and process runtime stats. Values are
// read atomically but not as one snapshot — families may be skewed by
// in-flight updates, which is the normal Prometheus contract.
func (m *Manager) WriteMetrics(w io.Writer) {
	mt := m.met
	counter := func(name, help string, v int64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}
	gauge := func(name, help string, v int64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %d\n", name, help, name, name, v)
	}
	family := func(name, help, typ string, c *labeledCounter) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
		labels, values := c.snapshot()
		for i, l := range labels {
			fmt.Fprintf(w, "%s{%s} %d\n", name, l, values[i])
		}
	}

	counter("wsndse_jobs_submitted_total", "Jobs accepted by Submit.", mt.jobsSubmitted.Load())
	fmt.Fprintf(w, "# HELP wsndse_jobs_completed_total Jobs that reached a terminal state, by status.\n"+
		"# TYPE wsndse_jobs_completed_total counter\n")
	for _, s := range []struct {
		status string
		v      int64
	}{
		{"done", mt.jobsDone.Load()},
		{"failed", mt.jobsFailed.Load()},
		{"timed_out", mt.jobsTimedOut.Load()},
		{"cancelled", mt.jobsCancelled.Load()},
	} {
		fmt.Fprintf(w, "wsndse_jobs_completed_total{status=%q} %d\n", s.status, s.v)
	}
	gauge("wsndse_jobs_queued", "Jobs queued or waiting out a retry backoff.", mt.jobsQueued.Load())
	gauge("wsndse_jobs_running", "Jobs currently executing on a worker.", mt.jobsRunning.Load())
	gauge("wsndse_queue_depth", "Jobs buffered in the submission queue.", int64(len(m.queue)))
	counter("wsndse_job_retries_total", "Failed attempts that re-queued for another try.", mt.retries.Load())
	family("wsndse_evals_total", "Distinct design-point evaluations, by scenario.", "counter", &mt.evals)
	gauge("wsndse_sse_subscribers", "Open /v1/jobs/{id}/events streams.", mt.sseSubscribers.Load())
	gauge("wsndse_store_results", "Fronts resident in the result store.", int64(m.store.Len()))
	counter("wsndse_store_evictions_total", "Results evicted from the store (LRU).", m.store.Evictions())
	counter("wsndse_island_rounds_total", "Island migration rounds completed.", mt.islandRounds.Load())
	counter("wsndse_island_restarts_total", "Island attempts retried after a crash or stall.", mt.islandRestarts.Load())
	counter("wsndse_obs_samples_total", "Telemetry samples recorded across all jobs.", mt.obsSamples.Load())
	counter("wsndse_obs_bytes_total", "Bytes of obs telemetry written across all jobs.", mt.obsBytes.Load())
	family("wsndse_http_requests_total", "HTTP requests served, by method and status code.", "counter", &mt.httpRequests)

	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	gauge("wsndse_heap_alloc_bytes", "Bytes of allocated heap objects.", int64(ms.HeapAlloc))
	gauge("wsndse_goroutines", "Live goroutines.", int64(runtime.NumGoroutine()))
	fmt.Fprintf(w, "# HELP wsndse_gc_pause_seconds_total Cumulative GC stop-the-world pause time.\n"+
		"# TYPE wsndse_gc_pause_seconds_total counter\nwsndse_gc_pause_seconds_total %g\n",
		float64(ms.PauseTotalNs)/1e9)
	fmt.Fprintf(w, "# HELP wsndse_uptime_seconds Seconds since the manager started.\n"+
		"# TYPE wsndse_uptime_seconds gauge\nwsndse_uptime_seconds %g\n",
		time.Since(mt.start).Seconds())
}
