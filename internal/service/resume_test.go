package service

import (
	"errors"
	"os"
	"reflect"
	"strings"
	"testing"

	"wsndse/internal/dse"
)

// corruptBothSlots overwrites a job's checkpoint files — latest and
// predecessor — with bytes that fail the snapshot checksum, modelling a
// disk that scribbled over both rotation slots.
func corruptBothSlots(t *testing.T, dir, id string) {
	t.Helper()
	for _, path := range []string{snapshotPath(dir, id), snapshotPrevPath(dir, id)} {
		if err := os.WriteFile(path, []byte("{ not a snapshot"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
}

// TestLoadSnapshotBothSlotsCorrupt closes the recovery matrix: one
// corrupt slot falls back to the other (covered elsewhere), but when
// BOTH slots fail their checksum the loader must say so — wrapping
// dse.ErrCorruptSnapshot, not os.ErrNotExist and not a zero-value
// resume.
func TestLoadSnapshotBothSlotsCorrupt(t *testing.T) {
	dir := t.TempDir()
	corruptBothSlots(t, dir, "j1")
	snap, err := LoadSnapshot(dir, "j1")
	if snap != nil {
		t.Fatalf("corrupt slots yielded a snapshot: %+v", snap)
	}
	if !errors.Is(err, dse.ErrCorruptSnapshot) {
		t.Fatalf("err = %v, want wrap of dse.ErrCorruptSnapshot", err)
	}
	if errors.Is(err, os.ErrNotExist) {
		t.Fatalf("corrupt files misreported as missing: %v", err)
	}
}

// TestResumeJobBitIdenticalSingleRun: a finished single-search job
// leaves its last durable checkpoint behind; a second manager on the
// same directory replays the tail via resume_job and lands on the same
// front.
func TestResumeJobBitIdenticalSingleRun(t *testing.T) {
	dir := t.TempDir()
	spec := smallNSGA2("ecg-ward", 7)
	spec.NSGA2 = &dse.NSGA2Config{PopulationSize: 8, Generations: 7}
	spec.CheckpointEvery = 2 // last checkpoint lands at generation 6

	m1 := newTestManager(t, Config{Workers: 1, CheckpointDir: dir})
	info, err := m1.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	if waitDone(t, m1, info.ID).Status != StatusDone {
		t.Fatal("golden run did not finish")
	}
	golden, err := m1.Front(info.ID)
	if err != nil {
		t.Fatal(err)
	}
	m1.Close()

	m2 := newTestManager(t, Config{Workers: 1, CheckpointDir: dir})
	defer m2.Close()
	spec.ResumeJob = info.ID
	resumed, err := m2.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	final := waitDone(t, m2, resumed.ID)
	if final.Status != StatusDone {
		t.Fatalf("resumed job %s: %s", final.Status, final.Error)
	}
	if final.ResumedFromStep != 6 {
		t.Errorf("resumed from step %d, want 6", final.ResumedFromStep)
	}
	front, err := m2.Front(resumed.ID)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(golden.Front, front.Front) {
		t.Fatalf("resume_job front differs: %d points vs %d", len(front.Front), len(golden.Front))
	}
}

// TestResumeJobAlgorithmMismatch: resuming a checkpoint under a spec
// that asks for a different algorithm must fail the job loudly instead
// of silently starting a fresh search.
func TestResumeJobAlgorithmMismatch(t *testing.T) {
	dir := t.TempDir()
	spec := smallNSGA2("ecg-ward", 7)
	spec.CheckpointEvery = 2

	m := newTestManager(t, Config{Workers: 1, CheckpointDir: dir})
	defer m.Close()
	info, err := m.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, m, info.ID)

	wrong := Spec{
		Scenario:  "ecg-ward",
		Algorithm: AlgoMOSA,
		Seed:      7,
		Workers:   2,
		MOSA:      &dse.MOSAConfig{Iterations: 50},
		ResumeJob: info.ID,
	}
	got, err := m.Submit(wrong)
	if err != nil {
		t.Fatal(err)
	}
	final := waitDone(t, m, got.ID)
	if final.Status != StatusFailed {
		t.Fatalf("mismatched resume ended %s, want failed", final.Status)
	}
	if !strings.Contains(final.Error, "checkpoint is a nsga2 run") {
		t.Errorf("error %q does not name the algorithm mismatch", final.Error)
	}
}

// TestResumeJobCorruptCheckpointFailsJob is the end-to-end face of the
// both-slots-corrupt case: the job fails with a corruption diagnosis
// rather than restarting the search from scratch under a resume label.
func TestResumeJobCorruptCheckpointFailsJob(t *testing.T) {
	dir := t.TempDir()
	corruptBothSlots(t, dir, "dead-job")

	m := newTestManager(t, Config{Workers: 1, CheckpointDir: dir})
	defer m.Close()
	spec := smallNSGA2("ecg-ward", 7)
	spec.ResumeJob = "dead-job"
	info, err := m.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	final := waitDone(t, m, info.ID)
	if final.Status != StatusFailed {
		t.Fatalf("resume from corrupt checkpoint ended %s, want failed", final.Status)
	}
	if !strings.Contains(final.Error, "corrupt") {
		t.Errorf("error %q does not mention corruption", final.Error)
	}
}

// TestResumeJobMissingCheckpointFailsJob: a resume_job naming a job
// that never checkpointed fails with a not-found diagnosis.
func TestResumeJobMissingCheckpointFailsJob(t *testing.T) {
	m := newTestManager(t, Config{Workers: 1, CheckpointDir: t.TempDir()})
	defer m.Close()
	spec := smallNSGA2("ecg-ward", 7)
	spec.ResumeJob = "never-existed"
	info, err := m.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	final := waitDone(t, m, info.ID)
	if final.Status != StatusFailed {
		t.Fatalf("resume from missing checkpoint ended %s, want failed", final.Status)
	}
	if !strings.Contains(final.Error, "no snapshot") {
		t.Errorf("error %q does not say the snapshot is missing", final.Error)
	}
}
