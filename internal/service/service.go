// Package service turns the scenario × algorithm exploration stack into a
// job-oriented, multi-tenant runtime: callers submit exploration jobs
// (scenario name, algorithm, seed, budget), a bounded-worker Manager
// schedules them concurrently over the compiled evaluation pipeline, and
// each job exposes lifecycle state, streaming progress, periodic
// checkpoints and — once finished — a versioned Pareto front in the
// content-addressed result Store.
//
// The paper's pitch is that the analytical model makes design-space
// exploration cheap enough to be interactive; this package is the layer
// that makes it *shared*: many consumers exploring many scenarios against
// one process, with the same determinism contract the algorithms
// guarantee below — a seeded job returns a bit-identical front no matter
// how many other jobs the service is running, because jobs share nothing
// mutable but the memo-safe code paths proven scheduling-independent in
// internal/dse.
//
// # Lifecycle and supervision
//
// The job state machine is
//
//	queued → running → done | failed | timed_out | cancelled
//	             ↘ queued (retry edge: attempt failed, retries left)
//
// Every attempt runs under a panic-recovering supervisor: a panic in an
// evaluator (or any hook on the search goroutine) fails the attempt with
// the captured stack instead of killing the process. A failed attempt
// with retries left (Spec.MaxRetries) re-enters queued, waits a capped
// exponential backoff with jitter (JobInfo.NextRetryAt), and runs again —
// resuming from the latest in-memory checkpoint when the job checkpoints
// (Spec.CheckpointEvery > 0), restarting from scratch otherwise; both
// paths produce a front bit-identical to an uninterrupted run, because
// resume restores the exact trajectory and a fresh run is deterministic
// in the seed. JobInfo reports Attempts, the last Error, and NextRetryAt
// while a retry is pending.
//
// Cancellation is cooperative through context.Context: the search
// algorithms check it at generation/segment/batch boundaries, so a
// cancelled job stops within one boundary and keeps the partial front it
// explored. Spec.DeadlineSeconds bounds the job's total running time
// (across retries) the same way: the deadline cancels at the next search
// boundary and the job lands in timed_out with its partial front.
// Neither cancelled nor timed_out jobs retry — both are verdicts, not
// faults.
//
// Jobs that request checkpointing produce dse.Snapshot checkpoints at
// search boundaries; a killed job resubmitted with Spec.Resume set to its
// last snapshot replays the uninterrupted run's exact trajectory and
// finishes with a bit-identical front. Durable checkpoint files
// (Config.CheckpointDir) are checksummed and double-buffered: a file
// torn by a crash mid-write fails verification on LoadSnapshot and
// recovery falls back to the previous checkpoint instead of resuming
// from garbage. Checkpoint and result-store write failures degrade
// gracefully — logged, never fatal to the job — so a full disk costs
// durability, not the exploration budget already spent. The
// internal/service/faultinject package provides the injection points the
// chaos test suite drives all of this with.
//
// # Island decomposition and drain
//
// Spec.Islands >= 2 runs one nsga2/mosa search as supervised worker
// islands (internal/service/island): lock-step rounds with deterministic
// ring migration, per-island checkpoints at every migration boundary,
// and failover by replay — an island panic, a killed worker process
// (Config.IslandExec), a lost executor or a stalled round
// (Config.IslandStallTimeout) costs at most one round, and the merged
// front stays bit-identical to an undisturbed run. Island jobs publish
// "island" events instead of "progress", surface per-island supervision
// state in JobInfo.Islands, and have no single resumable snapshot
// (Checkpoint returns ErrNoSnapshot); when the island supervisor itself
// gives up, the manager's retry edge resumes from the coordinator's
// composite checkpoint.
//
// Spec.ResumeJob resumes a prior job — plain or island — server-side
// from its durable checkpoint files under Config.CheckpointDir, keyed by
// the old job's ID: the cross-process-restart recovery path, no
// client-held snapshot required. A missing, both-slots-corrupt, or
// algorithm-mismatched checkpoint fails the job loudly rather than
// silently starting over. Manager.Drain is the graceful half of that
// story: it rejects new submissions with ErrDraining, cancels running
// jobs at their next boundary so their checkpoints land, and returns
// once every job has settled — wsn-serve wires it to SIGINT/SIGTERM.
//
// # Result store and warm starts
//
// Every finished job's front is archived in the Store under a content
// key — ResultKey hashes (scenario fingerprint, objective set,
// algorithm) — with an LRU bound and, when Config.ResultDir is set,
// durable persistence across process restarts (append-only index plus
// atomic per-result files). A Spec with WarmStart "auto" seeds its
// search from the archive: the exact content match if one exists,
// otherwise fronts of same-family sibling scenarios (transfer seeding);
// an explicit version ("v17") pins the source. Seeds reach the
// algorithms through dse.Options.SeedPoints, so a warm-started job stays
// a pure function of (spec, store contents) — determinism is preserved,
// just relative to a richer input. JobInfo.WarmStart reports what was
// actually used.
//
// # Observability
//
// Every job carries a telemetry sampler fed by dse.Options.Stats at the
// same search boundaries that serve progress, checkpoints and
// cancellation. The sampling contract: boundaries are free-running and
// can fire thousands of times per second, so the sampler records at
// most one sample per Config.ObsSampleInterval (default 250ms) — plus
// the final boundary, always, so even a sub-interval job leaves one
// complete sample — and the turned-away common case costs one mutex and
// a clock read, zero allocations (pinned by TestSamplerBoundaryZeroAlloc).
// Each sample captures search health (step, evaluations, rate, front
// size, hypervolume against a running-nadir reference, memo-cache
// hits/lookups, attempt, island round/restarts) plus process runtime
// stats, as int64 columns.
//
// Samples land in a per-job in-memory ring (the recent window behind
// Manager.JobStats and GET /v1/jobs/{id}/stats) and, when Config.ObsDir
// is set, in an append-only binary stream <obs-dir>/<jobID>.obs in the
// internal/obs format, decodable live or post-mortem with cmd/wsn-stats.
// File I/O runs on a per-job writer goroutine behind a bounded queue —
// an obs file that cannot be opened, written, or kept up with degrades
// that job to ring-only telemetry with one log line, never failing or
// slowing the search. Manager.WriteMetrics aggregates process-wide
// counters (job lifecycle, queue depth, per-scenario evaluations, store
// size/evictions, SSE subscribers, island rounds/restarts, obs volume)
// in Prometheus text form, served at GET /metrics by wsn-serve.
//
// # HTTP surface
//
// NewHandler exposes the Manager as a JSON-over-HTTP API (see http.go for
// the route table and error-code map), including an SSE stream of per-job
// progress events, and Client wraps that API for Go callers — decoding
// structured errors into typed *APIError values and draining the Page
// envelopes that all list endpoints return. cmd/wsn-serve is the
// production entry point; examples/service walks the whole flow.
package service

import (
	"fmt"
	"time"

	"wsndse/internal/dse"
	"wsndse/internal/scenario"
	"wsndse/internal/service/island"
)

// Algorithms the service accepts, mapping 1:1 onto the search entry
// points in internal/dse.
const (
	AlgoNSGA2      = "nsga2"
	AlgoMOSA       = "mosa"
	AlgoExhaustive = "exhaustive"
	AlgoRandom     = "random"
)

// Spec is the client-facing job description. Seed and Workers live here —
// not in the per-algorithm configs — because they are service-level
// concerns: Seed is the determinism key results are stored under, and
// Workers is the evaluation parallelism the scheduler budgets for
// (default 1, so a loaded service degrades to fair round-robin instead of
// thrashing; the per-job cap keeps one tenant from monopolizing the
// machine). Seed/Workers fields inside NSGA2/MOSA are overridden.
type Spec struct {
	Scenario  string `json:"scenario"`
	Algorithm string `json:"algorithm"`
	Seed      int64  `json:"seed,omitempty"`
	Workers   int    `json:"workers,omitempty"`

	// Exactly the matching algorithm's config is consulted; both are
	// optional (zero configs select the dse defaults).
	NSGA2 *dse.NSGA2Config `json:"nsga2,omitempty"`
	MOSA  *dse.MOSAConfig  `json:"mosa,omitempty"`

	// Budget is the random-search draw budget (default 4096).
	Budget int `json:"budget,omitempty"`
	// MaxPoints guards exhaustive sweeps (default 200000): a space larger
	// than this is rejected rather than enumerated.
	MaxPoints int `json:"max_points,omitempty"`

	// WarmStart seeds the initial population from prior fronts in the
	// result store: "" or "off" runs cold (the default — bit-identical
	// to pre-warm-start behavior), "auto" resolves the scenario's
	// content key (fingerprint, objectives, algorithm) plus near-miss
	// family siblings, and an explicit version ("17" or "v17") seeds
	// from exactly that stored front. Applies to nsga2 and mosa;
	// exhaustive and random ignore it. Ignored when Resume is set (the
	// snapshot already fixes the trajectory). JobInfo.WarmStart reports
	// what was actually seeded.
	WarmStart string `json:"warm_start,omitempty"`

	// MaxRetries is how many times a failed attempt (panic or error —
	// not cancellation, not a deadline) is automatically retried, with
	// capped exponential backoff between attempts. Retries resume from
	// the job's latest checkpoint when CheckpointEvery > 0 and restart
	// from scratch otherwise; either way the final front is bit-identical
	// to an uninterrupted run. Default 0 (fail on the first error),
	// capped at 16.
	MaxRetries int `json:"max_retries,omitempty"`

	// DeadlineSeconds bounds the job's total running time across all
	// attempts (queue wait excluded). The deadline cancels cooperatively
	// at the next search boundary; the job ends timed_out, keeping the
	// partial front explored so far. 0 means no deadline.
	DeadlineSeconds float64 `json:"deadline_seconds,omitempty"`

	// CheckpointEvery asks for a dse.Snapshot every N search boundaries
	// (generations / chain segments / evaluation batches); 0 disables.
	CheckpointEvery int `json:"checkpoint_every,omitempty"`
	// Resume restarts from a snapshot produced by a previous job with the
	// same scenario, algorithm and algorithm config. The resumed job's
	// front is bit-identical to an uninterrupted run.
	Resume *dse.Snapshot `json:"resume,omitempty"`
	// ResumeJob resumes from the durable checkpoint files a previous job
	// (same scenario, algorithm, config and island layout) left under the
	// server's checkpoint directory — the restart path that needs no
	// snapshot round-trip through the client. Requires Config.CheckpointDir;
	// mutually exclusive with Resume and WarmStart. Corrupt or missing
	// checkpoints fail the job with a diagnosable error rather than
	// silently restarting from scratch.
	ResumeJob string `json:"resume_job,omitempty"`

	// Islands partitions the search across N supervised islands with
	// deterministic ring migration (see internal/service/island): 0 or 1
	// selects the plain single-search path, 2..16 the island coordinator.
	// nsga2 and mosa only. The merged front is a pure function of
	// (spec, islands, migration_interval, migrants) — island crashes,
	// executor loss and coordinator restarts never change it. Island jobs
	// checkpoint at every migration boundary (checkpoint_every must stay
	// 0), publish "island" events instead of "progress", and report
	// per-island supervision state in JobInfo.Islands.
	Islands int `json:"islands,omitempty"`
	// MigrationInterval is the migration period in search boundaries
	// (0 selects the island default, 5). Only valid with Islands >= 2.
	MigrationInterval int `json:"migration_interval,omitempty"`
	// Migrants is how many front members each island sends its ring
	// successor per boundary (0 selects the default, 4; capped at 64).
	// Only valid with Islands >= 2.
	Migrants int `json:"migrants,omitempty"`
}

// maxEvalWorkers caps per-job evaluation parallelism.
const maxEvalWorkers = 64

// maxIslands caps Spec.Islands, and maxMigrants Spec.Migrants: island
// decomposition is a handful-of-partitions technique — a thousand-island
// request is a typo or an attack, not a plan.
const (
	maxIslands  = 16
	maxMigrants = 64
)

// normalize fills the defaults validation and execution agree on.
func (s Spec) normalize() Spec {
	if s.Workers <= 0 {
		s.Workers = 1
	}
	if s.Budget == 0 {
		s.Budget = 4096
	}
	if s.MaxPoints == 0 {
		s.MaxPoints = 200000
	}
	return s
}

// Validate rejects a malformed spec before a worker is committed to it:
// unknown scenario or algorithm, out-of-domain algorithm configs,
// out-of-range budgets, or a resume snapshot from a different algorithm.
func (s Spec) Validate() error {
	if s.Scenario == "" {
		return fmt.Errorf("service: spec has no scenario")
	}
	if _, ok := scenario.Lookup(s.Scenario); !ok {
		return fmt.Errorf("service: unknown scenario %q", s.Scenario)
	}
	switch s.Algorithm {
	case AlgoNSGA2:
		if s.NSGA2 != nil {
			if err := s.NSGA2.Validate(); err != nil {
				return fmt.Errorf("service: %w", err)
			}
		}
	case AlgoMOSA:
		if s.MOSA != nil {
			if err := s.MOSA.Validate(); err != nil {
				return fmt.Errorf("service: %w", err)
			}
		}
	case AlgoExhaustive, AlgoRandom:
		// Budget/MaxPoints domain-checked below.
	default:
		return fmt.Errorf("service: unknown algorithm %q (want %s|%s|%s|%s)",
			s.Algorithm, AlgoNSGA2, AlgoMOSA, AlgoExhaustive, AlgoRandom)
	}
	if s.Workers < 0 || s.Workers > maxEvalWorkers {
		return fmt.Errorf("service: workers %d out of [0,%d]", s.Workers, maxEvalWorkers)
	}
	if s.Budget < 0 {
		return fmt.Errorf("service: negative random-search budget %d", s.Budget)
	}
	if s.MaxPoints < 0 {
		return fmt.Errorf("service: negative exhaustive point limit %d", s.MaxPoints)
	}
	if s.CheckpointEvery < 0 {
		return fmt.Errorf("service: negative checkpoint interval %d", s.CheckpointEvery)
	}
	if s.MaxRetries < 0 || s.MaxRetries > maxJobRetries {
		return fmt.Errorf("service: max_retries %d out of [0,%d]", s.MaxRetries, maxJobRetries)
	}
	if s.DeadlineSeconds < 0 {
		return fmt.Errorf("service: negative deadline_seconds %g", s.DeadlineSeconds)
	}
	if s.Resume != nil && s.Resume.Algorithm != s.Algorithm {
		return fmt.Errorf("service: resume snapshot is a %s run, spec wants %s", s.Resume.Algorithm, s.Algorithm)
	}
	if !validWarmStart(s.WarmStart) {
		return fmt.Errorf("service: malformed warm_start %q (want off|auto|<version>)", s.WarmStart)
	}
	if s.ResumeJob != "" {
		if s.Resume != nil {
			return fmt.Errorf("service: resume and resume_job are mutually exclusive")
		}
		if warmStartRequested(s.WarmStart) {
			return fmt.Errorf("service: resume_job and warm_start are mutually exclusive (the checkpoint already fixes the trajectory)")
		}
	}
	if s.Islands < 0 || s.Islands > maxIslands {
		return fmt.Errorf("service: islands %d out of [0,%d]", s.Islands, maxIslands)
	}
	if s.Islands >= 2 {
		if s.Algorithm != AlgoNSGA2 && s.Algorithm != AlgoMOSA {
			return fmt.Errorf("service: algorithm %s does not support island decomposition", s.Algorithm)
		}
		if s.Resume != nil {
			return fmt.Errorf("service: island jobs resume via resume_job, not a single-search snapshot")
		}
		if warmStartRequested(s.WarmStart) {
			return fmt.Errorf("service: warm_start is not supported for island jobs")
		}
		if s.CheckpointEvery != 0 {
			return fmt.Errorf("service: island jobs checkpoint at every migration boundary; checkpoint_every must be 0")
		}
	} else {
		if s.MigrationInterval != 0 {
			return fmt.Errorf("service: migration_interval needs islands >= 2")
		}
		if s.Migrants != 0 {
			return fmt.Errorf("service: migrants needs islands >= 2")
		}
	}
	if s.MigrationInterval < 0 {
		return fmt.Errorf("service: negative migration_interval %d", s.MigrationInterval)
	}
	if s.Migrants < 0 || s.Migrants > maxMigrants {
		return fmt.Errorf("service: migrants %d out of [0,%d]", s.Migrants, maxMigrants)
	}
	return nil
}

// Status is the job lifecycle state.
type Status string

const (
	StatusQueued    Status = "queued"
	StatusRunning   Status = "running"
	StatusDone      Status = "done"
	StatusFailed    Status = "failed"
	StatusTimedOut  Status = "timed_out"
	StatusCancelled Status = "cancelled"
)

// Terminal reports whether the job has stopped moving. A queued status
// on a job with Attempts > 0 is the retry edge — the job failed and is
// waiting out its backoff — not a terminal state.
func (s Status) Terminal() bool {
	return s == StatusDone || s == StatusFailed || s == StatusTimedOut || s == StatusCancelled
}

// ProgressInfo is the service-level progress view: the dse boundary
// counters plus wall-clock throughput (which belongs here, not in dse —
// timing is observational and never feeds back into results).
type ProgressInfo struct {
	Step        int     `json:"step"`
	TotalSteps  int     `json:"total_steps"`
	Evaluated   int     `json:"evaluated"`
	Infeasible  int     `json:"infeasible"`
	FrontSize   int     `json:"front_size"`
	ElapsedSec  float64 `json:"elapsed_sec"`
	EvalsPerSec float64 `json:"evals_per_sec"`
}

// JobInfo is the externally visible job state. Spec is echoed with Resume
// nulled (snapshots can be large; ResumedFromStep records that and where
// the job resumed).
type JobInfo struct {
	ID              string `json:"id"`
	Spec            Spec   `json:"spec"`
	ResumedFromStep int    `json:"resumed_from_step,omitempty"`
	Status          Status `json:"status"`
	// Error is the most recent attempt's failure (panic value + stack for
	// supervised panics). It persists through the retry wait — a queued
	// job with a non-empty Error is on the retry edge — and clears if a
	// later attempt succeeds.
	Error string `json:"error,omitempty"`
	// Attempts counts attempts started; 1 for a job that never failed.
	Attempts int `json:"attempts,omitempty"`
	// NextRetryAt is when the next attempt starts, set only while the job
	// waits out its retry backoff.
	NextRetryAt *time.Time    `json:"next_retry_at,omitempty"`
	CreatedAt   time.Time     `json:"created_at"`
	StartedAt   *time.Time    `json:"started_at,omitempty"`
	FinishedAt  *time.Time    `json:"finished_at,omitempty"`
	Progress    *ProgressInfo `json:"progress,omitempty"`
	// Islands is the per-island supervision state of an island job
	// (Spec.Islands >= 2): which executor last ran each island, the latest
	// boundary it passed, and its attempt/restart counts. Nil for
	// single-search jobs.
	Islands       []island.Status `json:"islands,omitempty"`
	ResultVersion int             `json:"result_version,omitempty"`
	// WarmStart reports how the initial population was seeded; nil for
	// cold runs (including warm_start: auto against an empty store).
	WarmStart *WarmStartInfo `json:"warm_start,omitempty"`
}

// FrontPoint is one Pareto-front point in wire form.
type FrontPoint struct {
	Config []int     `json:"config"`
	Objs   []float64 `json:"objs"`
}

// frontPoints converts a dse front (feasible by construction).
func frontPoints(front []dse.Point) []FrontPoint {
	out := make([]FrontPoint, len(front))
	for i, p := range front {
		out[i] = FrontPoint{Config: append([]int(nil), p.Config...), Objs: append([]float64(nil), p.Objs...)}
	}
	return out
}

// FrontResponse is the GET /v1/jobs/{id}/front payload: the front over
// everything the job evaluated, with enough identity to reproduce it.
type FrontResponse struct {
	JobID      string       `json:"job_id"`
	Status     Status       `json:"status"`
	Scenario   string       `json:"scenario"`
	Algorithm  string       `json:"algorithm"`
	Seed       int64        `json:"seed"`
	Evaluated  int          `json:"evaluated"`
	Infeasible int          `json:"infeasible"`
	Front      []FrontPoint `json:"front"`
}
