package service

import (
	"context"
	"fmt"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"wsndse/internal/dse"
	"wsndse/internal/scenario"
)

// smallNSGA2 is the cheap job every test reaches for.
func smallNSGA2(scenarioName string, seed int64) Spec {
	return Spec{
		Scenario:  scenarioName,
		Algorithm: AlgoNSGA2,
		Seed:      seed,
		Workers:   2,
		NSGA2:     &dse.NSGA2Config{PopulationSize: 8, Generations: 6},
	}
}

// newTestManager opens a Manager, failing the test on error.
func newTestManager(tb testing.TB, cfg Config) *Manager {
	tb.Helper()
	m, err := New(cfg)
	if err != nil {
		tb.Fatal(err)
	}
	return m
}

func waitDone(t *testing.T, m *Manager, id string) JobInfo {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	info, err := m.Wait(ctx, id)
	if err != nil {
		t.Fatalf("waiting for %s: %v (status %s)", id, err, info.Status)
	}
	return info
}

func TestJobLifecycle(t *testing.T) {
	m := newTestManager(t, Config{Workers: 2})
	defer m.Close()

	info, err := m.Submit(smallNSGA2("ecg-ward", 7))
	if err != nil {
		t.Fatal(err)
	}
	if info.ID == "" || info.Status.Terminal() {
		t.Fatalf("fresh job info %+v", info)
	}
	if info.Spec.Resume != nil {
		t.Error("echoed spec should have Resume stripped")
	}
	final := waitDone(t, m, info.ID)
	if final.Status != StatusDone {
		t.Fatalf("status %s (%s), want done", final.Status, final.Error)
	}
	if final.ResultVersion == 0 {
		t.Fatal("done job has no result version")
	}
	if final.Progress == nil || final.Progress.Step != final.Progress.TotalSteps {
		t.Fatalf("final progress %+v", final.Progress)
	}
	front, err := m.Front(info.ID)
	if err != nil {
		t.Fatal(err)
	}
	if len(front.Front) == 0 || front.Scenario != "ecg-ward" || front.Algorithm != AlgoNSGA2 {
		t.Fatalf("front %+v", front)
	}
	stored, ok := m.Store().Get(final.ResultVersion)
	if !ok || stored.JobID != info.ID || len(stored.Front) != len(front.Front) {
		t.Fatalf("stored result %+v", stored)
	}
}

func TestSubmitValidation(t *testing.T) {
	m := newTestManager(t, Config{Workers: 1})
	defer m.Close()
	bad := []Spec{
		{},
		{Scenario: "no-such-scenario", Algorithm: AlgoNSGA2},
		{Scenario: "ecg-ward", Algorithm: "gradient-descent"},
		{Scenario: "ecg-ward", Algorithm: AlgoNSGA2, NSGA2: &dse.NSGA2Config{PopulationSize: 7}},
		{Scenario: "ecg-ward", Algorithm: AlgoMOSA, MOSA: &dse.MOSAConfig{Cooling: 1.5}},
		{Scenario: "ecg-ward", Algorithm: AlgoNSGA2, Workers: 1000},
		{Scenario: "ecg-ward", Algorithm: AlgoNSGA2, CheckpointEvery: -1},
		{Scenario: "ecg-ward", Algorithm: AlgoNSGA2, Resume: &dse.Snapshot{Algorithm: "mosa"}},
	}
	for i, spec := range bad {
		if _, err := m.Submit(spec); err == nil {
			t.Errorf("bad spec %d accepted: %+v", i, spec)
		}
	}
}

// TestDeterminismUnderConcurrency is the multi-tenant determinism
// guarantee: a seeded job's front is bit-identical whether it runs alone
// on a single-worker manager or alongside seven other jobs on a
// four-worker one.
func TestDeterminismUnderConcurrency(t *testing.T) {
	solo := newTestManager(t, Config{Workers: 1})
	info, err := solo.Submit(smallNSGA2("mixed-ward", 42))
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, solo, info.ID)
	want, err := solo.Front(info.ID)
	solo.Close()
	if err != nil {
		t.Fatal(err)
	}

	busy := newTestManager(t, Config{Workers: 4})
	defer busy.Close()
	var ids []string
	for i := 0; i < 4; i++ { // noise: other scenarios, other seeds
		for _, spec := range []Spec{
			smallNSGA2("ecg-ward", int64(100+i)),
			{Scenario: "athletes", Algorithm: AlgoRandom, Seed: int64(i), Budget: 512, Workers: 2},
		} {
			in, err := busy.Submit(spec)
			if err != nil {
				t.Fatal(err)
			}
			ids = append(ids, in.ID)
		}
	}
	target, err := busy.Submit(smallNSGA2("mixed-ward", 42))
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, busy, target.ID)
	got, err := busy.Front(target.ID)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want.Front, got.Front) {
		t.Fatalf("front differs under load:\nsolo %+v\nbusy %+v", want.Front, got.Front)
	}
	if want.Evaluated != got.Evaluated || want.Infeasible != got.Infeasible {
		t.Fatalf("counts differ under load: (%d,%d) vs (%d,%d)",
			want.Evaluated, want.Infeasible, got.Evaluated, got.Infeasible)
	}
	for _, id := range ids {
		waitDone(t, busy, id)
	}
}

// TestCheckpointResumeBitIdentical is the satellite's determinism proof at
// service level, per registered scenario: run a seeded NSGA-II job
// uninterrupted; run it again with checkpointing and kill it mid-run;
// resume a third job from the killed job's snapshot; the resumed front
// must match the uninterrupted front bit for bit.
func TestCheckpointResumeBitIdentical(t *testing.T) {
	for _, sc := range scenario.List() {
		sc := sc
		t.Run(sc.Name, func(t *testing.T) {
			t.Parallel()
			dir := t.TempDir()
			m := newTestManager(t, Config{Workers: 2, CheckpointDir: dir})
			defer m.Close()

			spec := Spec{
				Scenario:  sc.Name,
				Algorithm: AlgoNSGA2,
				Seed:      11,
				Workers:   2,
				NSGA2:     &dse.NSGA2Config{PopulationSize: 12, Generations: 30},
			}
			ref, err := m.Submit(spec)
			if err != nil {
				t.Fatal(err)
			}
			waitDone(t, m, ref.ID)
			want, err := m.Front(ref.ID)
			if err != nil {
				t.Fatal(err)
			}

			// Kill a checkpointing twin once its first snapshot lands.
			spec.CheckpointEvery = 3
			victim, err := m.Submit(spec)
			if err != nil {
				t.Fatal(err)
			}
			replay, ch, cancelSub, err := m.Subscribe(victim.ID)
			if err != nil {
				t.Fatal(err)
			}
			defer cancelSub()
			killed := false
			for _, e := range replay {
				if e.Type == "progress" && e.Progress.Step >= 3 {
					m.Cancel(victim.ID)
					killed = true
				}
			}
			for !killed {
				e, ok := <-ch
				if !ok {
					break // job finished before we could kill it: still a valid resume source
				}
				if e.Type == "progress" && e.Progress.Step >= 3 {
					m.Cancel(victim.ID)
					killed = true
				}
			}
			waitDone(t, m, victim.ID)
			snap, err := m.Checkpoint(victim.ID)
			if err != nil {
				t.Fatalf("victim has no checkpoint: %v", err)
			}
			// The durable twin must match the in-memory snapshot.
			fromDisk, err := LoadSnapshot(dir, victim.ID)
			if err != nil {
				t.Fatal(err)
			}
			if fromDisk.Step != snap.Step || fromDisk.Algorithm != snap.Algorithm {
				t.Fatalf("disk snapshot (step %d) != memory snapshot (step %d)", fromDisk.Step, snap.Step)
			}
			if _, err := filepath.Glob(filepath.Join(dir, "*.snapshot.json")); err != nil {
				t.Fatal(err)
			}

			resumeSpec := spec
			resumeSpec.Resume = fromDisk
			resumed, err := m.Submit(resumeSpec)
			if err != nil {
				t.Fatal(err)
			}
			info := waitDone(t, m, resumed.ID)
			if info.Status != StatusDone {
				t.Fatalf("resumed job %s: %s", info.Status, info.Error)
			}
			if info.ResumedFromStep != fromDisk.Step {
				t.Fatalf("ResumedFromStep=%d, want %d", info.ResumedFromStep, fromDisk.Step)
			}
			got, err := m.Front(resumed.ID)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(want.Front, got.Front) {
				t.Fatalf("resumed front differs from uninterrupted run:\nwant %+v\ngot  %+v", want.Front, got.Front)
			}
		})
	}
}

// TestMOSACheckpointResume covers the second algorithm family end to end
// at service level.
func TestMOSACheckpointResume(t *testing.T) {
	m := newTestManager(t, Config{Workers: 1})
	defer m.Close()
	spec := Spec{
		Scenario:  "ecg-ward",
		Algorithm: AlgoMOSA,
		Seed:      3,
		Workers:   2,
		MOSA:      &dse.MOSAConfig{Iterations: 4000, Restarts: 4},
	}
	ref, err := m.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, m, ref.ID)
	want, err := m.Front(ref.ID)
	if err != nil {
		t.Fatal(err)
	}

	spec.CheckpointEvery = 1
	victim, err := m.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	_, ch, cancelSub, err := m.Subscribe(victim.ID)
	if err != nil {
		t.Fatal(err)
	}
	defer cancelSub()
	for e := range ch {
		if e.Type == "progress" && e.Progress.Step >= 1 {
			m.Cancel(victim.ID)
			break
		}
	}
	waitDone(t, m, victim.ID)
	snap, err := m.Checkpoint(victim.ID)
	if err != nil {
		t.Fatal(err)
	}
	resumeSpec := spec
	resumeSpec.Resume = snap
	resumed, err := m.Submit(resumeSpec)
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, m, resumed.ID)
	got, err := m.Front(resumed.ID)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want.Front, got.Front) {
		t.Fatalf("resumed MOSA front differs:\nwant %+v\ngot  %+v", want.Front, got.Front)
	}
}

func TestCancelQueuedJob(t *testing.T) {
	m := newTestManager(t, Config{Workers: 1})
	defer m.Close()
	// Occupy the single worker with a job big enough that cancellation is
	// the only way it ends, then cancel one still queued behind it.
	first, err := m.Submit(Spec{
		Scenario: "ecg-ward", Algorithm: AlgoNSGA2, Seed: 1, Workers: 1,
		NSGA2: &dse.NSGA2Config{PopulationSize: 16, Generations: 1000000},
	})
	if err != nil {
		t.Fatal(err)
	}
	queued, err := m.Submit(smallNSGA2("ecg-ward", 2))
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Cancel(queued.ID); err != nil {
		t.Fatal(err)
	}
	info := waitDone(t, m, queued.ID)
	if info.Status != StatusCancelled {
		t.Fatalf("queued-then-cancelled job is %s", info.Status)
	}
	if _, err := m.Front(queued.ID); err == nil {
		t.Fatal("cancelled-before-start job should have no front")
	}
	// Let the first job make observable progress before killing it, so the
	// cancel lands mid-run and the partial front survives.
	_, ch, cancelSub, err := m.Subscribe(first.ID)
	if err != nil {
		t.Fatal(err)
	}
	defer cancelSub()
	for e := range ch {
		if e.Type == "progress" {
			break
		}
	}
	if err := m.Cancel(first.ID); err != nil {
		t.Fatal(err)
	}
	info = waitDone(t, m, first.ID)
	if info.Status != StatusCancelled {
		t.Fatalf("running-then-cancelled job is %s", info.Status)
	}
	// A cancelled running job keeps its partial front.
	if front, err := m.Front(first.ID); err != nil || front.Status != StatusCancelled || len(front.Front) == 0 {
		t.Fatalf("partial front: %+v, %v", front, err)
	}
}

func TestQueueFull(t *testing.T) {
	m := newTestManager(t, Config{Workers: 1, QueueLimit: 1})
	defer m.Close()
	specs := smallNSGA2("ecg-ward", 1)
	if _, err := m.Submit(specs); err != nil {
		t.Fatal(err)
	}
	// Fill the queue (worker may have grabbed the first job already, so
	// submit until the queue rejects; it must happen within 3 submissions).
	var sawFull bool
	var accepted int
	for i := 0; i < 3; i++ {
		if _, err := m.Submit(specs); err != nil {
			if err != ErrQueueFull {
				t.Fatalf("unexpected error %v", err)
			}
			sawFull = true
			break
		}
		accepted++
	}
	if !sawFull {
		t.Fatal("queue never reported full")
	}
	// Rejected submissions must leave no phantom job records behind.
	if got := len(m.Jobs()); got != accepted+1 {
		t.Fatalf("%d job records after rejection, want %d", got, accepted+1)
	}
}

// mustPut stores r, failing the test on error.
func mustPut(t *testing.T, s *Store, r StoredResult) int {
	t.Helper()
	v, err := s.Put(r)
	if err != nil {
		t.Fatal(err)
	}
	return v
}

func TestStoreVersioning(t *testing.T) {
	s, err := NewStore(StoreConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Latest("", ""); ok {
		t.Fatal("empty store claims a latest result")
	}
	v1 := mustPut(t, s, StoredResult{Scenario: "a", Algorithm: "nsga2", Fingerprint: "fpA", Objectives: ObjectivesFull})
	v2 := mustPut(t, s, StoredResult{Scenario: "a", Algorithm: "mosa", Fingerprint: "fpA", Objectives: ObjectivesFull})
	v3 := mustPut(t, s, StoredResult{Scenario: "b", Algorithm: "nsga2", Fingerprint: "fpB", Objectives: ObjectivesFull})
	if v1 != 1 || v2 != 2 || v3 != 3 {
		t.Fatalf("versions %d,%d,%d", v1, v2, v3)
	}
	if got, total := s.Query(ResultQuery{Scenario: "a"}); len(got) != 2 || total != 2 {
		t.Fatalf("Query(a) returned %d results (total %d)", len(got), total)
	}
	// Matches come back newest-first.
	if got, _ := s.Query(ResultQuery{Algorithm: "nsga2"}); len(got) != 2 || got[0].Version != 3 || got[1].Version != 1 {
		t.Fatalf("Query(nsga2) = %+v", got)
	}
	latest, ok := s.Latest("a", "")
	if !ok || latest.Version != 2 {
		t.Fatalf("Latest(a) = %+v", latest)
	}
	if _, ok := s.Get(0); ok {
		t.Fatal("Get(0) succeeded")
	}
	if r, ok := s.Get(3); !ok || r.Scenario != "b" {
		t.Fatalf("Get(3) = %+v", r)
	}
	// The content key is derived and queryable; the exact-key index finds
	// the newest holder of a key.
	wantKey := ResultKey("fpA", ObjectivesFull, "nsga2")
	if r, _ := s.Get(1); r.Key != wantKey {
		t.Fatalf("v1 key %q, want %q", r.Key, wantKey)
	}
	if r, ok := s.LatestByKey(wantKey); !ok || r.Version != 1 {
		t.Fatalf("LatestByKey = %+v, %v", r, ok)
	}
	if got, total := s.Query(ResultQuery{Key: wantKey}); total != 1 || len(got) != 1 || got[0].Version != 1 {
		t.Fatalf("Query(key) = %+v (total %d)", got, total)
	}
	// Pagination: limit/offset window the newest-first order.
	if got, total := s.Query(ResultQuery{Limit: 2}); total != 3 || len(got) != 2 || got[0].Version != 3 {
		t.Fatalf("page 1 = %+v (total %d)", got, total)
	}
	if got, total := s.Query(ResultQuery{Limit: 2, Offset: 2}); total != 3 || len(got) != 1 || got[0].Version != 1 {
		t.Fatalf("page 2 = %+v (total %d)", got, total)
	}
}

func TestHubReplayAndDropOldest(t *testing.T) {
	h := newHub(nil)
	h.publish(Event{Type: "status", Status: StatusQueued})
	for i := 0; i < 5; i++ {
		h.publish(Event{Type: "progress", Progress: &ProgressInfo{Step: i + 1}})
	}
	replay, ch, cancel := h.subscribe()
	defer cancel()
	// Replay keeps the lifecycle event and only the latest progress.
	if len(replay) != 2 || replay[0].Status != StatusQueued || replay[1].Progress.Step != 5 {
		t.Fatalf("replay %+v", replay)
	}
	// Overflow the subscriber: newest events win.
	for i := 0; i < subBuffer+10; i++ {
		h.publish(Event{Type: "progress", Progress: &ProgressInfo{Step: 100 + i}})
	}
	h.publish(Event{Type: "status", Status: StatusDone})
	h.close()
	var last Event
	n := 0
	for e := range ch {
		last = e
		n++
	}
	if n == 0 || last.Type != "status" || last.Status != StatusDone {
		t.Fatalf("after overflow got %d events, last %+v", n, last)
	}

	// Subscribing after close replays and returns a closed channel.
	replay2, ch2, cancel2 := h.subscribe()
	defer cancel2()
	if len(replay2) == 0 {
		t.Fatal("post-close replay empty")
	}
	if _, ok := <-ch2; ok {
		t.Fatal("post-close channel delivered an event")
	}
}

func TestManagerClose(t *testing.T) {
	m := newTestManager(t, Config{Workers: 1})
	ids := make([]string, 0, 3)
	for i := 0; i < 3; i++ {
		info, err := m.Submit(Spec{
			Scenario: "ecg-ward", Algorithm: AlgoNSGA2, Seed: int64(i), Workers: 1,
			NSGA2: &dse.NSGA2Config{PopulationSize: 16, Generations: 80},
		})
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, info.ID)
	}
	m.Close()
	for _, id := range ids {
		info, ok := m.Get(id)
		if !ok || !info.Status.Terminal() {
			t.Fatalf("job %s not terminal after Close: %+v", id, info)
		}
	}
	if _, err := m.Submit(smallNSGA2("ecg-ward", 9)); err != ErrClosed {
		t.Fatalf("Submit after Close: %v, want ErrClosed", err)
	}
}

func TestSpecNormalizeDefaults(t *testing.T) {
	s := Spec{Scenario: "ecg-ward", Algorithm: AlgoRandom}.normalize()
	if s.Workers != 1 || s.Budget != 4096 || s.MaxPoints != 200000 {
		t.Fatalf("normalized %+v", s)
	}
}

func TestExhaustiveRejectsHugeSpace(t *testing.T) {
	m := newTestManager(t, Config{Workers: 1})
	defer m.Close()
	info, err := m.Submit(Spec{Scenario: "ecg-ward", Algorithm: AlgoExhaustive, MaxPoints: 1000})
	if err != nil {
		t.Fatal(err)
	}
	final := waitDone(t, m, info.ID)
	if final.Status != StatusFailed {
		t.Fatalf("huge exhaustive job is %s, want failed", final.Status)
	}
	if final.Error == "" {
		t.Fatal("failed job carries no error")
	}
}

func TestJobsOrderStable(t *testing.T) {
	m := newTestManager(t, Config{Workers: 2})
	defer m.Close()
	var want []string
	for i := 0; i < 5; i++ {
		info, err := m.Submit(Spec{Scenario: "ecg-ward", Algorithm: AlgoRandom, Seed: int64(i), Budget: 64, Workers: 1})
		if err != nil {
			t.Fatal(err)
		}
		want = append(want, info.ID)
	}
	got := m.Jobs()
	if len(got) != len(want) {
		t.Fatalf("Jobs() returned %d entries", len(got))
	}
	for i, info := range got {
		if info.ID != want[i] {
			t.Fatalf("Jobs()[%d] = %s, want %s", i, info.ID, want[i])
		}
	}
	for _, id := range want {
		waitDone(t, m, id)
	}
	if fmt.Sprintf("j%d", len(want)) != want[len(want)-1] {
		t.Fatalf("IDs not sequential: %v", want)
	}
}
