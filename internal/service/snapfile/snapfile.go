// Package snapfile is the service's durable checkpoint-file layer: a
// two-slot (latest + previous) rotation of atomically written,
// checksum-enveloped snapshot files. It exists so the single-run
// checkpoints in package service and the per-island checkpoints in
// package island share one write/recover protocol instead of two
// slightly different ones.
//
// The protocol: Write rotates the current latest file into the .prev
// slot, then writes the new bytes to a temp file and renames it into
// place. Load prefers the latest slot and falls back to the previous one
// when the latest is missing or fails to decode (the decode callback is
// expected to verify a checksum, e.g. dse.DecodeSnapshotFile) — so a
// crash that tears the latest file costs one checkpoint of progress,
// never a resume from garbage.
package snapfile

import (
	"fmt"
	"os"
	"path/filepath"

	"wsndse/internal/service/faultinject"
)

// Path is the latest-slot file for a checkpoint base name.
func Path(dir, base string) string { return filepath.Join(dir, base+".json") }

// PrevPath is the previous-slot file, the fallback after a torn write.
func PrevPath(dir, base string) string { return filepath.Join(dir, base+".prev.json") }

// Write persists one already-encoded snapshot under base: rotate the
// current latest file to the .prev slot, then write data atomically
// (temp + rename). The faultinject hook sits between the encoded bytes
// and the disk, so chaos tests can tear or fail exactly this write.
func Write(dir, base string, data []byte) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	path := Path(dir, base)
	data, err := faultinject.CheckpointWrite(path, data)
	if err != nil {
		return err
	}
	if _, err := os.Stat(path); err == nil {
		if err := os.Rename(path, PrevPath(dir, base)); err != nil {
			return err
		}
	}
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

// Load reads the checkpoint stored under base, preferring the latest
// slot and falling back to the previous one when the latest is missing
// or fails decode (torn write, checksum mismatch). The first real error
// encountered is returned when no slot verifies; when neither slot
// exists at all the error wraps os.ErrNotExist.
func Load[T any](dir, base string, decode func(path string, data []byte) (T, error)) (T, error) {
	var zero T
	var firstErr error
	for _, path := range []string{Path(dir, base), PrevPath(dir, base)} {
		data, err := os.ReadFile(path)
		if err != nil {
			if firstErr == nil && !os.IsNotExist(err) {
				firstErr = err
			}
			continue
		}
		v, err := decode(path, data)
		if err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		return v, nil
	}
	if firstErr != nil {
		return zero, firstErr
	}
	return zero, fmt.Errorf("snapfile: no checkpoint %s in %s: %w", base, dir, os.ErrNotExist)
}
