package snapfile

import (
	"errors"
	"os"
	"strings"
	"testing"
)

// ident decodes a "checkpoint" that is just its own bytes, failing on a
// magic corrupt marker the way a checksum verifier would.
func ident(path string, data []byte) (string, error) {
	if strings.Contains(string(data), "CORRUPT") {
		return "", errors.New("corrupt: " + path)
	}
	return string(data), nil
}

func TestRotationAndFallback(t *testing.T) {
	dir := t.TempDir()

	if _, err := Load(dir, "j1", ident); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("empty dir: err = %v, want os.ErrNotExist", err)
	}

	if err := Write(dir, "j1", []byte("v1")); err != nil {
		t.Fatal(err)
	}
	if got, err := Load(dir, "j1", ident); err != nil || got != "v1" {
		t.Fatalf("after first write: %q, %v", got, err)
	}
	if _, err := os.Stat(PrevPath(dir, "j1")); !os.IsNotExist(err) {
		t.Fatal("prev slot exists after a single write")
	}

	if err := Write(dir, "j1", []byte("v2")); err != nil {
		t.Fatal(err)
	}
	if got, _ := Load(dir, "j1", ident); got != "v2" {
		t.Fatalf("latest = %q, want v2", got)
	}
	prev, err := os.ReadFile(PrevPath(dir, "j1"))
	if err != nil || string(prev) != "v1" {
		t.Fatalf("prev slot = %q, %v, want v1", prev, err)
	}

	// Torn latest: fall back to prev.
	if err := os.WriteFile(Path(dir, "j1"), []byte("CORRUPT"), 0o644); err != nil {
		t.Fatal(err)
	}
	if got, err := Load(dir, "j1", ident); err != nil || got != "v1" {
		t.Fatalf("fallback read: %q, %v, want v1", got, err)
	}

	// Both slots corrupt: the first decode error surfaces.
	if err := os.WriteFile(PrevPath(dir, "j1"), []byte("CORRUPT"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(dir, "j1", ident); err == nil || !strings.Contains(err.Error(), "corrupt") {
		t.Fatalf("both corrupt: err = %v", err)
	}
}
