package service

import (
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"wsndse/internal/dse"
	"wsndse/internal/obs"
)

// DefaultObsSampleInterval is the minimum spacing between recorded
// telemetry samples of one job. Search boundaries can fire thousands of
// times per second on small problems; the sampler records at most one
// sample per interval (plus the final boundary, always), which bounds the
// cost of runtime.ReadMemStats and the obs write no matter how fast the
// search runs. Tests and wsn-serve -obs-interval override it.
const DefaultObsSampleInterval = 250 * time.Millisecond

// statsRingCap bounds the in-memory recent window each job keeps for
// GET /v1/jobs/{id}/stats. At the default interval it covers the last
// ~2 minutes of a job's life; older samples live only in the obs file.
const statsRingCap = 512

// The sampler's field schema. Every value is an int64 per the obs
// format; floats ride as fixed-point (the _x1000/_x1e6 suffixes).
// Island jobs append the island-identity columns so one job keeps one
// schema for its whole stream (schema changes are supported by the
// format but thrash the delta bases).
var statsFields = []string{
	"ts_ms",               // sample wall-clock, Unix milliseconds
	"attempt",             // 1-based run attempt
	"step",                // boundaries completed (generation/segment/batch)
	"total_steps",         //
	"evaluated",           // distinct configurations evaluated
	"infeasible",          // of those, constraint violations
	"front_size",          // current Pareto archive size
	"evals_per_sec_x1000", // overall evaluation rate, fixed-point
	"hypervolume_x1e6",    // dominated hypervolume vs the running nadir ref
	"cache_hits",          // memo-cache hits
	"cache_lookups",       // memo-cache lookups (hits + evaluations)
	"heap_alloc_bytes",    // process heap in use
	"goroutines",          // live goroutines
	"gc_pause_total_ms",   // cumulative GC pause, milliseconds
}

var islandStatsFields = append(append([]string(nil), statsFields...),
	"island",   // island index the sample came from
	"round",    // latest migration round the coordinator completed
	"restarts", // island attempts retried so far (job-wide)
)

// StatsResponse is the recent telemetry window of one job, the JSON
// shape of GET /v1/jobs/{id}/stats: a columnar block — one Fields list,
// one row of Values per sample — decoded from the job's in-memory ring
// (the same samples its obs file persists). Samples covers the job's
// whole life; Rows only the retained window.
type StatsResponse struct {
	JobID   string    `json:"job_id"`
	Fields  []string  `json:"fields"`
	Rows    [][]int64 `json:"rows"`
	Samples int64     `json:"samples_total"`
}

// jobSampler turns a job's per-boundary dse.Stats callbacks into
// rate-limited telemetry samples: one row into the in-memory ring
// (backing the live stats endpoint) and, when the manager has an obs
// directory, the same row appended to <obs-dir>/<jobID>.obs. All methods
// are safe for concurrent use — island jobs observe from several
// executor goroutines at once.
//
// The steady-state cost at a search boundary is one mutex acquisition
// and a clock read when the sample is rate-limited away, and a
// zero-allocation row copy when it is due; the ring reuses its row
// storage once full. File I/O — including the per-job open, which
// costs more than a whole benchmark-sized job on some filesystems —
// happens on a dedicated writer goroutine fed through a bounded
// channel, never on the search's boundary path.
type jobSampler struct {
	met         *metrics
	evalsCell   *atomic.Int64 // metrics evals_total{scenario} cell, resolved once
	jobID       string
	minInterval time.Duration
	logf        func(format string, args ...any)

	mu      sync.Mutex
	path    string // obs file destination; "" keeps telemetry in memory
	fields  []string
	vals    []int64
	ring    [][]int64
	head    int   // ring slot the next sample lands in
	count   int64 // samples recorded over the job's life
	last    time.Time
	start   time.Time
	attempt int64
	warned  bool // one drop warning per job
	closed  bool // ops closed; no more file rows

	// ops feeds filled rows to writeLoop; free recycles their storage
	// back so the steady state allocates nothing. Both are nil until the
	// first recorded sample of a job with an obs directory.
	ops  chan []int64
	free chan []int64
	wg   sync.WaitGroup

	prevEval map[int]int // per-island evaluated watermark for metrics deltas
	nadir    []float64   // running per-objective maxima, the HV reference base
	round    int64       // island jobs: latest coordinator round
	restarts int64       // island jobs: restarts so far
}

// newJobSampler builds the sampler for one job. dir == "" keeps the
// telemetry in memory only (the ring still serves the stats endpoint).
// The obs file is created by the writer goroutine, started lazily at
// the first recorded sample, and a file that cannot be created degrades
// to ring-only, logged once: observability must never fail a job.
func newJobSampler(met *metrics, jobID, scenario string, isIsland bool, dir string, interval time.Duration, logf func(string, ...any)) *jobSampler {
	if interval <= 0 {
		interval = DefaultObsSampleInterval
	}
	fields := statsFields
	if isIsland {
		fields = islandStatsFields
	}
	now := time.Now()
	s := &jobSampler{
		met:         met,
		evalsCell:   met.evals.get(fmt.Sprintf("scenario=%q", scenario)),
		jobID:       jobID,
		minInterval: interval,
		logf:        logf,
		fields:      fields,
		vals:        make([]int64, len(fields)),
		start:       now,
		// The rate-limit clock starts at job start, not at zero: the
		// first boundary of every job would otherwise always sample,
		// making sub-interval jobs pay double (first + final).
		last:     now,
		attempt:  1,
		prevEval: make(map[int]int),
	}
	if dir != "" {
		s.path = filepath.Join(dir, jobID+".obs")
	}
	return s
}

// obsQueueCap bounds how many rows can wait for the writer goroutine.
// It matches the ring so the file can hold everything the live window
// does even if the writer stalls; past that, rows are dropped with one
// log line — file telemetry lags before it blocks a search.
const obsQueueCap = statsRingCap

// writeLoop owns the job's obs file: it opens the file at the first
// row (an open syscall can cost more than a benchmark-sized job, so it
// runs here, overlapped with the search, not on the boundary path),
// appends every queued row, and closes the file when close() shuts the
// channel. Row storage goes back through free for reuse. Open or write
// failures are logged once and degrade the job to ring-only telemetry.
func (s *jobSampler) writeLoop() {
	defer s.wg.Done()
	var (
		f      *os.File
		w      *obs.Writer
		failed bool
	)
	for row := range s.ops {
		if f == nil && !failed {
			var err error
			if f, err = os.OpenFile(s.path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644); err != nil {
				failed = true
				s.logf("service: job %s: obs file: %v (telemetry stays in memory)", s.jobID, err)
			} else {
				w = obs.NewWriter(f)
			}
		}
		if w != nil {
			before := w.Bytes()
			if err := w.WriteSample(s.fields, row); err != nil {
				failed = true
				s.logf("service: job %s: obs write: %v (file abandoned, ring continues)", s.jobID, err)
				_ = f.Close()
				w = nil
			} else {
				s.met.obsBytes.Add(w.Bytes() - before)
			}
		}
		select {
		case s.free <- row:
		default:
		}
	}
	if f != nil && w != nil {
		_ = f.Close()
	}
}

// setAttempt records which run attempt subsequent samples belong to.
func (s *jobSampler) setAttempt(n int) {
	s.mu.Lock()
	s.attempt = int64(n)
	s.mu.Unlock()
}

// setIsland records the island coordinator's latest round/restart state,
// stamped into subsequent samples.
func (s *jobSampler) setIsland(round, restarts int) {
	s.mu.Lock()
	if int64(round) > s.round {
		s.round = int64(round)
	}
	s.restarts = int64(restarts)
	s.mu.Unlock()
}

// observeSearch is the StatsSink of a single-search job.
func (s *jobSampler) observeSearch(st dse.Stats) { s.observe(-1, st) }

// observeIsland is the per-island StatsSink of an island job.
func (s *jobSampler) observeIsland(island int, st dse.Stats) { s.observe(island, st) }

func (s *jobSampler) observe(island int, st dse.Stats) {
	s.mu.Lock()
	defer s.mu.Unlock()

	// Per-scenario evaluation totals advance on every boundary, sampled
	// or not: the watermark delta keeps the counter monotone across
	// resumed attempts (counts carried by a snapshot) and resets cleanly
	// when a checkpoint-less retry restarts the count from zero.
	if prev := s.prevEval[island]; st.Evaluated > prev {
		s.evalsCell.Add(int64(st.Evaluated - prev))
	}
	s.prevEval[island] = st.Evaluated

	now := time.Now()
	final := st.TotalSteps > 0 && st.Step >= st.TotalSteps
	if !final && now.Sub(s.last) < s.minInterval {
		return
	}
	s.last = now

	hv := s.hypervolume(st.Front)
	heap, gcPauseNs := processMemStats(now)

	elapsed := now.Sub(s.start).Seconds()
	rate := 0.0
	if elapsed > 0 {
		rate = float64(st.Evaluated) / elapsed
	}

	v := s.vals
	v[0] = now.UnixMilli()
	v[1] = s.attempt
	v[2] = int64(st.Step)
	v[3] = int64(st.TotalSteps)
	v[4] = int64(st.Evaluated)
	v[5] = int64(st.Infeasible)
	v[6] = int64(len(st.Front))
	v[7] = int64(rate * 1000)
	v[8] = int64(hv * 1e6)
	v[9] = st.CacheHits
	v[10] = st.CacheLookups
	v[11] = heap
	v[12] = int64(runtime.NumGoroutine())
	v[13] = gcPauseNs / 1e6
	if len(v) > len(statsFields) {
		v[14] = int64(island)
		v[15] = s.round
		v[16] = s.restarts
	}
	s.record(v)
}

// memStatsCache amortizes runtime.ReadMemStats — a stop-the-world-ish
// call too expensive to run per job on sub-millisecond jobs — across
// every sampler in the process: samples within the TTL reuse the last
// reading. Heap and GC-pause stats are process-wide anyway, so sharing
// loses nothing but sub-100ms staleness.
var memStatsCache struct {
	mu      sync.Mutex
	at      time.Time
	heap    int64
	pauseNs int64
}

const memStatsTTL = 100 * time.Millisecond

func processMemStats(now time.Time) (heapAlloc, gcPauseNs int64) {
	c := &memStatsCache
	c.mu.Lock()
	defer c.mu.Unlock()
	if now.Sub(c.at) >= memStatsTTL {
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		c.at, c.heap, c.pauseNs = now, int64(ms.HeapAlloc), int64(ms.PauseTotalNs)
	}
	return c.heap, c.pauseNs
}

// record appends one filled row to the ring and hands a copy to the
// writer goroutine. Caller holds mu.
func (s *jobSampler) record(v []int64) {
	if len(s.ring) < statsRingCap {
		s.ring = append(s.ring, append([]int64(nil), v...))
	} else {
		copy(s.ring[s.head], v)
	}
	s.head = (s.head + 1) % statsRingCap
	s.count++
	s.met.obsSamples.Add(1)
	if s.path == "" || s.closed {
		return
	}
	if s.ops == nil {
		s.ops = make(chan []int64, obsQueueCap)
		s.free = make(chan []int64, 4)
		s.wg.Add(1)
		go s.writeLoop()
	}
	var row []int64
	select {
	case row = <-s.free:
	default:
		row = make([]int64, len(v))
	}
	copy(row, v)
	select {
	case s.ops <- row:
	default:
		// Writer is obsQueueCap rows behind; keep the search moving and
		// let the file miss samples the ring still holds.
		if !s.warned {
			s.warned = true
			s.logf("service: job %s: obs writer backlogged, dropping file samples (ring continues)", s.jobID)
		}
	}
}

// hypervolume is the telemetry-grade dominated hypervolume: the
// reference point is the running nadir (per-objective maximum seen so
// far this job) scaled by 1.1, so the series is comparable within a job
// as long as the nadir is stable, and trend-grade across nadir growth.
// Caller holds mu; the front is the search's shared storage, read only.
func (s *jobSampler) hypervolume(front []dse.Point) float64 {
	if len(front) == 0 {
		return 0
	}
	nobj := len(front[0].Objs)
	if nobj < 2 || nobj > 3 {
		return 0 // dse.Hypervolume covers the paper's 2-3 objective plots
	}
	if len(s.nadir) != nobj {
		s.nadir = make([]float64, nobj)
	}
	for _, p := range front {
		for i, o := range p.Objs {
			if o > s.nadir[i] {
				s.nadir[i] = o
			}
		}
	}
	ref := make(dse.Objectives, nobj)
	for i, n := range s.nadir {
		ref[i] = n*1.1 + 1e-9
	}
	return dse.Hypervolume(front, ref)
}

// window returns the most recent min(n, retained) rows, oldest first,
// as copies safe to hand to the HTTP layer.
func (s *jobSampler) window(n int) (fields []string, rows [][]int64, total int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	have := len(s.ring)
	if n <= 0 || n > have {
		n = have
	}
	rows = make([][]int64, 0, n)
	// s.head is the oldest slot once the ring wrapped; before that the
	// ring is [0, head) in order.
	start := 0
	if have == statsRingCap {
		start = s.head
	}
	for i := have - n; i < have; i++ {
		slot := s.ring[(start+i)%have]
		rows = append(rows, append([]int64(nil), slot...))
	}
	return s.fields, rows, s.count
}

// close stops accepting file rows and lets the writer goroutine finish
// the queue and close the file in the background. It does not wait —
// the worker moves to its next job while the tail flushes; drain is the
// blocking variant for shutdown and tests.
func (s *jobSampler) close() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ops != nil && !s.closed {
		close(s.ops)
	}
	s.closed = true
}

// drain blocks until the writer goroutine has flushed every queued row
// and closed the obs file. Call after close.
func (s *jobSampler) drain() {
	s.wg.Wait()
}

// JobStats returns the job's recent telemetry window (up to n samples;
// n <= 0 selects the whole retained ring). Jobs that have not sampled
// yet return an empty window, not an error — a queued job legitimately
// has no telemetry.
func (m *Manager) JobStats(id string, n int) (StatsResponse, error) {
	j, ok := m.lookup(id)
	if !ok {
		return StatsResponse{}, ErrNotFound
	}
	resp := StatsResponse{JobID: id, Rows: [][]int64{}}
	j.mu.Lock()
	sampler := j.sampler
	j.mu.Unlock()
	if sampler == nil {
		return resp, nil
	}
	fields, rows, total := sampler.window(n)
	resp.Fields = fields
	if rows != nil {
		resp.Rows = rows
	}
	resp.Samples = total
	return resp, nil
}
