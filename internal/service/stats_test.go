package service

import (
	"context"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"wsndse/internal/dse"
	"wsndse/internal/obs"
)

// fieldIndex locates a column in a stats field list.
func fieldIndex(t *testing.T, fields []string, name string) int {
	t.Helper()
	for i, f := range fields {
		if f == name {
			return i
		}
	}
	t.Fatalf("field %q missing from %v", name, fields)
	return -1
}

// TestJobTelemetryEndToEnd runs a job with an obs directory and a
// sample-every-boundary interval, then checks the live window and the
// on-disk stream agree and carry monotone search-health counters.
func TestJobTelemetryEndToEnd(t *testing.T) {
	dir := t.TempDir()
	m := newTestManager(t, Config{Workers: 1, ObsDir: dir, ObsSampleInterval: time.Nanosecond})
	defer m.Close()

	info, err := m.Submit(smallNSGA2("ecg-ward", 7))
	if err != nil {
		t.Fatal(err)
	}
	final := waitDone(t, m, info.ID)
	if final.Status != StatusDone {
		t.Fatalf("job ended %s: %s", final.Status, final.Error)
	}

	resp, err := m.JobStats(info.ID, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Rows) == 0 {
		t.Fatal("no telemetry rows after a finished job")
	}
	if resp.Samples != int64(len(resp.Rows)) {
		t.Fatalf("lifetime samples %d, window %d (ring should not have wrapped)", resp.Samples, len(resp.Rows))
	}
	step := fieldIndex(t, resp.Fields, "step")
	total := fieldIndex(t, resp.Fields, "total_steps")
	evald := fieldIndex(t, resp.Fields, "evaluated")
	lookups := fieldIndex(t, resp.Fields, "cache_lookups")
	hits := fieldIndex(t, resp.Fields, "cache_hits")
	hv := fieldIndex(t, resp.Fields, "hypervolume_x1e6")
	for i, row := range resp.Rows {
		if len(row) != len(resp.Fields) {
			t.Fatalf("row %d: %d values, %d fields", i, len(row), len(resp.Fields))
		}
		if i == 0 {
			continue
		}
		prev := resp.Rows[i-1]
		if row[step] <= prev[step] || row[evald] < prev[evald] || row[lookups] < prev[lookups] || row[hits] < prev[hits] {
			t.Fatalf("row %d not monotone after %v: %v", i, prev, row)
		}
	}
	last := resp.Rows[len(resp.Rows)-1]
	if last[step] != last[total] {
		t.Fatalf("final sample at step %d of %d", last[step], last[total])
	}
	if last[evald] == 0 || last[hv] <= 0 {
		t.Fatalf("final sample evaluated=%d hv=%d", last[evald], last[hv])
	}

	// The obs file is the same series, torn-tail tolerant and decodable.
	// Closing the manager first drains the background obs writer, so the
	// file is complete on disk.
	m.Close()
	f, err := os.Open(filepath.Join(dir, info.ID+".obs"))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	samples, truncated, err := obs.ReadAll(f)
	if err != nil || truncated {
		t.Fatalf("obs decode: err=%v truncated=%v", err, truncated)
	}
	if len(samples) != len(resp.Rows) {
		t.Fatalf("obs file has %d samples, live window %d", len(samples), len(resp.Rows))
	}
	for i, s := range samples {
		for j, v := range s.Values {
			if v != resp.Rows[i][j] {
				t.Fatalf("sample %d field %s: file %d, ring %d", i, s.Fields[j], v, resp.Rows[i][j])
			}
		}
	}

	// The window parameter trims from the front.
	tail, err := m.JobStats(info.ID, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(tail.Rows) != 2 || tail.Rows[1][step] != last[step] {
		t.Fatalf("n=2 window: %d rows, last step %v", len(tail.Rows), tail.Rows)
	}

	if _, err := m.JobStats("nope", 0); err != ErrNotFound {
		t.Fatalf("unknown job: %v", err)
	}
}

// TestIslandTelemetry pins the island job schema (island/round/restarts
// columns) and the island round counter.
func TestIslandTelemetry(t *testing.T) {
	m := newTestManager(t, Config{Workers: 1, ObsSampleInterval: time.Nanosecond})
	defer m.Close()
	info, err := m.Submit(islandSpec(3))
	if err != nil {
		t.Fatal(err)
	}
	final := waitDone(t, m, info.ID)
	if final.Status != StatusDone {
		t.Fatalf("island job ended %s: %s", final.Status, final.Error)
	}
	resp, err := m.JobStats(info.ID, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Rows) == 0 {
		t.Fatal("island job produced no telemetry")
	}
	isl := fieldIndex(t, resp.Fields, "island")
	seen := map[int64]bool{}
	for _, row := range resp.Rows {
		seen[row[isl]] = true
	}
	if !seen[0] && !seen[1] {
		t.Fatalf("no island identity in samples: %v", seen)
	}
	if got := m.met.islandRounds.Load(); got == 0 {
		t.Fatal("island rounds counter never moved")
	}
}

// TestMetricsEndpoint scrapes /metrics after a job and checks the family
// inventory and a few values the job must have moved.
func TestMetricsEndpoint(t *testing.T) {
	c, _ := newTestServer(t, Config{Workers: 2})
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	info, err := c.Submit(ctx, smallNSGA2("ecg-ward", 11))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Wait(ctx, info.ID, nil); err != nil {
		t.Fatal(err)
	}

	resp, err := http.Get(c.BaseURL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics: %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("content type %q", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	text := string(body)
	families := []string{
		"wsndse_jobs_submitted_total",
		"wsndse_jobs_completed_total",
		"wsndse_jobs_queued",
		"wsndse_jobs_running",
		"wsndse_queue_depth",
		"wsndse_job_retries_total",
		"wsndse_evals_total",
		"wsndse_sse_subscribers",
		"wsndse_store_results",
		"wsndse_store_evictions_total",
		"wsndse_island_rounds_total",
		"wsndse_island_restarts_total",
		"wsndse_obs_samples_total",
		"wsndse_obs_bytes_total",
		"wsndse_heap_alloc_bytes",
		"wsndse_goroutines",
		"wsndse_gc_pause_seconds_total",
		"wsndse_uptime_seconds",
	}
	for _, fam := range families {
		if !strings.Contains(text, "# TYPE "+fam+" ") {
			t.Errorf("family %s missing from /metrics", fam)
		}
	}
	for _, line := range []string{
		"wsndse_jobs_submitted_total 1",
		`wsndse_jobs_completed_total{status="done"} 1`,
		`wsndse_evals_total{scenario="ecg-ward"}`,
	} {
		if !strings.Contains(text, line) {
			t.Errorf("expected %q in /metrics output", line)
		}
	}

	// The stats endpoint serves the live window over HTTP too.
	stats, err := c.JobStats(ctx, info.ID, 0)
	if err != nil {
		t.Fatal(err)
	}
	if stats.JobID != info.ID || len(stats.Rows) == 0 {
		t.Fatalf("HTTP stats: %+v", stats)
	}
	if _, err := c.JobStats(ctx, "nope", 0); err == nil {
		t.Fatal("unknown job stats should 404")
	}
}

// TestSamplerBoundaryZeroAlloc is the alloc-regression gate on the
// sampler's hot path: a search boundary the rate limiter turns away —
// the overwhelmingly common case, every generation of every job — must
// not allocate. (A recorded sample may allocate modestly; the sample
// interval bounds those to ~4/s per job.)
func TestSamplerBoundaryZeroAlloc(t *testing.T) {
	s := newJobSampler(newMetrics(), "gate", "ecg-ward", false, "", time.Hour, func(string, ...any) {})
	front := []dse.Point{{Objs: dse.Objectives{1, 2}}, {Objs: dse.Objectives{2, 1}}}
	st := dse.Stats{Step: 1, TotalSteps: 1 << 30, Front: front}
	s.observeSearch(st) // warm the per-island watermark entry
	allocs := testing.AllocsPerRun(500, func() {
		st.Evaluated++
		st.CacheLookups++
		s.observeSearch(st)
	})
	if allocs != 0 {
		t.Fatalf("rate-limited boundary allocated %.1f times per call, want 0", allocs)
	}
}

// TestStatusGaugesSettle pins that the lifecycle gauges return to zero
// once every job is terminal — the invariant that catches a missed
// transition edge.
func TestStatusGaugesSettle(t *testing.T) {
	m := newTestManager(t, Config{Workers: 2})
	defer m.Close()
	ids := []string{}
	for seed := int64(0); seed < 3; seed++ {
		info, err := m.Submit(smallNSGA2("ecg-ward", seed))
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, info.ID)
	}
	for _, id := range ids {
		waitDone(t, m, id)
	}
	if q := m.met.jobsQueued.Load(); q != 0 {
		t.Fatalf("jobs_queued gauge %d after all jobs finished", q)
	}
	if r := m.met.jobsRunning.Load(); r != 0 {
		t.Fatalf("jobs_running gauge %d after all jobs finished", r)
	}
	if d := m.met.jobsDone.Load(); d != 3 {
		t.Fatalf("jobs_done %d, want 3", d)
	}
}
