package service

import (
	"sync"
	"time"
)

// StoredResult is one finished exploration kept by the Store: the front
// plus the identity that produced it. Version is a process-wide monotonic
// counter — "the ward's front as of version 17" is a stable reference
// even as newer jobs re-explore the same scenario.
type StoredResult struct {
	Version     int          `json:"version"`
	JobID       string       `json:"job_id"`
	Scenario    string       `json:"scenario"`
	Algorithm   string       `json:"algorithm"`
	Seed        int64        `json:"seed"`
	Evaluated   int          `json:"evaluated"`
	Infeasible  int          `json:"infeasible"`
	Front       []FrontPoint `json:"front"`
	CompletedAt time.Time    `json:"completed_at"`
}

// Store is the versioned result archive: every successfully finished
// job's front, queryable by scenario and algorithm. It is append-only —
// results are immutable history, superseded rather than overwritten.
type Store struct {
	mu      sync.RWMutex
	results []StoredResult
}

// Put archives a result and returns its version (1-based, monotonic in
// completion order).
func (s *Store) Put(r StoredResult) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	r.Version = len(s.results) + 1
	s.results = append(s.results, r)
	return r.Version
}

// Query returns results matching the filters in version order; empty
// strings match everything. The returned slice is fresh but shares the
// immutable front storage.
func (s *Store) Query(scenarioName, algorithm string) []StoredResult {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var out []StoredResult
	for _, r := range s.results {
		if (scenarioName == "" || r.Scenario == scenarioName) &&
			(algorithm == "" || r.Algorithm == algorithm) {
			out = append(out, r)
		}
	}
	return out
}

// Latest returns the newest result matching the filters.
func (s *Store) Latest(scenarioName, algorithm string) (StoredResult, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	for i := len(s.results) - 1; i >= 0; i-- {
		r := s.results[i]
		if (scenarioName == "" || r.Scenario == scenarioName) &&
			(algorithm == "" || r.Algorithm == algorithm) {
			return r, true
		}
	}
	return StoredResult{}, false
}

// Get returns the result at an exact version.
func (s *Store) Get(version int) (StoredResult, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if version < 1 || version > len(s.results) {
		return StoredResult{}, false
	}
	return s.results[version-1], true
}

// Len returns how many results are archived.
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.results)
}
