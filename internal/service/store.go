package service

import (
	"bufio"
	"container/list"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"wsndse/internal/service/faultinject"
)

// ObjectivesFull names the three-objective evaluator every service job
// runs (energy, signal quality, delay — the paper's Eq. 1–9 metrics).
// The objective set is part of a result's content key: a front computed
// under the baseline (energy, delay) projection must never seed or
// answer queries for a full three-objective search.
var ObjectivesFull = []string{"energy", "quality", "delay"}

// ObjectivesBaseline names the application-blind (energy, delay)
// projection wsn-explore's -objectives baseline mode searches.
var ObjectivesBaseline = []string{"energy", "delay"}

// resultKeyVersion prefixes the key encoding, so a future change to the
// encoding visibly changes every key instead of silently colliding.
const resultKeyVersion = "wsndse/resultkey/v1"

// ResultKey is the content address of an exploration result: a hex
// SHA-256 over (scenario fingerprint, objective set, algorithm). Two
// jobs with the same key explored the same problem — identical scenario
// content (regardless of registered name), identical objective space,
// same algorithm family — so their fronts are interchangeable as
// warm-start seeds and cache answers. Seeds and algorithm configs are
// deliberately excluded: they change how well the front was found, not
// what problem it belongs to.
func ResultKey(fingerprint string, objectives []string, algorithm string) string {
	h := sha256.New()
	fmt.Fprintf(h, "%s\nfp %s\nobjs %s\nalgo %s\n",
		resultKeyVersion, fingerprint, strings.Join(objectives, ","), algorithm)
	return hex.EncodeToString(h.Sum(nil))
}

// StoredResult is one finished exploration kept by the Store: the front
// plus the identity that produced it. Version is a process-lifetime
// monotonic counter (persisted stores continue where the dead process
// stopped) — "the ward's front as of version 17" is a stable reference
// even as newer jobs re-explore the same scenario. Key/Fingerprint/
// Objectives are the content identity warm starting resolves against.
type StoredResult struct {
	Version     int          `json:"version"`
	Key         string       `json:"key"`
	Fingerprint string       `json:"fingerprint"`
	Objectives  []string     `json:"objectives"`
	JobID       string       `json:"job_id"`
	Scenario    string       `json:"scenario"`
	Algorithm   string       `json:"algorithm"`
	Seed        int64        `json:"seed"`
	Evaluated   int          `json:"evaluated"`
	Infeasible  int          `json:"infeasible"`
	Front       []FrontPoint `json:"front"`
	CompletedAt time.Time    `json:"completed_at"`
}

// ResultQuery filters and paginates Store.Query. Zero-valued string
// filters match everything; Family matches results whose scenario name
// is "<Family>/..." (the generated-population prefix). Limit <= 0 means
// no page bound; Offset skips that many matches. Matches come back
// newest-first (descending version): the freshest front is the one warm
// starts and dashboards want on page one.
type ResultQuery struct {
	Key         string
	Fingerprint string
	Scenario    string
	Family      string
	Algorithm   string
	Limit       int
	Offset      int
}

func (q ResultQuery) matches(r *StoredResult) bool {
	if q.Key != "" && r.Key != q.Key {
		return false
	}
	if q.Fingerprint != "" && r.Fingerprint != q.Fingerprint {
		return false
	}
	if q.Scenario != "" && r.Scenario != q.Scenario {
		return false
	}
	if q.Family != "" && !strings.HasPrefix(r.Scenario, q.Family+"/") {
		return false
	}
	if q.Algorithm != "" && r.Algorithm != q.Algorithm {
		return false
	}
	return true
}

// DefaultMaxResults bounds an unconfigured store. The store is a working
// set, not an archive: at millions-of-users scale the value of a front
// decays once fresher re-explorations of the same key exist, so the
// bound evicts the least-recently-used result rather than growing
// without limit.
const DefaultMaxResults = 1024

// StoreConfig parameterizes a Store. The zero value is a purely
// in-memory store bounded at DefaultMaxResults.
type StoreConfig struct {
	// Dir, when set, persists every result to <Dir>/v<version>.json
	// (atomic tmp+rename, like the checkpoint path) and records puts and
	// evictions in an append-only <Dir>/index.jsonl. A Store reopened on
	// the same directory serves the surviving results with the version
	// counter continuing monotonically.
	Dir string
	// MaxResults bounds how many results are retained (<= 0 selects
	// DefaultMaxResults). Beyond it the least-recently-used result is
	// evicted; Get, Latest and Query hits refresh recency.
	MaxResults int
}

// storedEntry is one retained result plus its LRU list node.
type storedEntry struct {
	res  StoredResult
	node *list.Element // element value is the version (int)
}

// indexRecord is one line of the on-disk append-only index: the write-
// ahead history of puts and evictions. Replaying the file rebuilds the
// retained set exactly; Key rides along so the index alone answers
// "which versions held which content" without opening result files.
type indexRecord struct {
	Op      string `json:"op"` // "put" | "evict"
	Version int    `json:"version"`
	Key     string `json:"key,omitempty"`
}

// Store is the content-addressed result archive: every successfully
// finished job's front, keyed by version and by ResultKey, LRU-bounded,
// and (when configured with a directory) durable across process death.
// Results are immutable once stored — superseded by newer versions,
// never overwritten. All methods are safe for concurrent use.
type Store struct {
	mu        sync.RWMutex
	cfg       StoreConfig
	byVer     map[int]*storedEntry // O(1) version lookup
	byKey     map[string][]int     // content key → versions, ascending
	lru       *list.List           // front = most recently used
	nextVer   int
	index     *os.File     // nil for in-memory stores
	evictions atomic.Int64 // lifetime LRU evictions, for /metrics
}

// NewStore opens a store. With cfg.Dir set it creates the directory,
// replays the append-only index, loads every surviving result file and
// reopens the index for appending, so the returned store carries the
// previous process's results.
func NewStore(cfg StoreConfig) (*Store, error) {
	if cfg.MaxResults <= 0 {
		cfg.MaxResults = DefaultMaxResults
	}
	s := &Store{
		cfg:   cfg,
		byVer: make(map[int]*storedEntry),
		byKey: make(map[string][]int),
		lru:   list.New(),
	}
	if cfg.Dir == "" {
		return s, nil
	}
	if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("service: result store dir: %w", err)
	}
	if err := s.replayIndex(); err != nil {
		return nil, err
	}
	f, err := os.OpenFile(s.indexPath(), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("service: result store index: %w", err)
	}
	s.index = f
	// A store reopened with a smaller bound trims immediately (recorded
	// in the index like any other eviction).
	for s.lru.Len() > s.cfg.MaxResults {
		s.evictOldest()
	}
	return s, nil
}

func (s *Store) indexPath() string { return filepath.Join(s.cfg.Dir, "index.jsonl") }

func (s *Store) resultPath(version int) string {
	return filepath.Join(s.cfg.Dir, fmt.Sprintf("v%d.json", version))
}

// replayIndex rebuilds the retained set from the on-disk history: puts
// minus evictions, in recorded order (which is also recency order, so
// the rebuilt LRU treats older surviving versions as colder). A result
// file that disappeared out from under the index is treated as evicted
// rather than failing the whole store open.
func (s *Store) replayIndex() error {
	f, err := os.Open(s.indexPath())
	if os.IsNotExist(err) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("service: result store index: %w", err)
	}
	defer f.Close()
	live := []int{}
	liveSet := map[int]bool{}
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		var rec indexRecord
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			// A torn final line (crash mid-append) ends the usable history.
			break
		}
		switch rec.Op {
		case "put":
			if !liveSet[rec.Version] {
				liveSet[rec.Version] = true
				live = append(live, rec.Version)
			}
			if rec.Version > s.nextVer {
				s.nextVer = rec.Version
			}
		case "evict":
			if liveSet[rec.Version] {
				delete(liveSet, rec.Version)
			}
		}
	}
	if err := sc.Err(); err != nil {
		return fmt.Errorf("service: result store index: %w", err)
	}
	for _, v := range live {
		if !liveSet[v] {
			continue
		}
		data, err := os.ReadFile(s.resultPath(v))
		if err != nil {
			continue // evicted behind the index's back; drop it
		}
		var r StoredResult
		if err := json.Unmarshal(data, &r); err != nil {
			return fmt.Errorf("service: corrupt result file v%d.json: %w", v, err)
		}
		r.Version = v
		s.insert(r)
	}
	return nil
}

// insert registers r (whose Version is already assigned) in the maps and
// LRU as most-recently-used. Caller holds mu.
func (s *Store) insert(r StoredResult) {
	e := &storedEntry{res: r}
	e.node = s.lru.PushFront(r.Version)
	s.byVer[r.Version] = e
	s.byKey[r.Key] = append(s.byKey[r.Key], r.Version)
}

// Put archives a result, assigns its version (monotonic in completion
// order, continuing across restarts for persistent stores), computes its
// content key when unset, persists it, and evicts beyond the size bound.
// A persistence failure is returned to the caller — a store that cannot
// keep its durability promise must not pretend it did.
func (s *Store) Put(r StoredResult) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if r.Key == "" {
		r.Key = ResultKey(r.Fingerprint, r.Objectives, r.Algorithm)
	}
	s.nextVer++
	r.Version = s.nextVer
	if s.index != nil {
		data, err := json.Marshal(r)
		if err != nil {
			s.nextVer--
			return 0, err
		}
		if err := writeFileAtomic(s.resultPath(r.Version), data); err != nil {
			s.nextVer--
			return 0, err
		}
		if err := s.appendIndex(indexRecord{Op: "put", Version: r.Version, Key: r.Key}); err != nil {
			s.nextVer--
			return 0, err
		}
	}
	s.insert(r)
	for s.lru.Len() > s.cfg.MaxResults {
		s.evictOldest()
	}
	return r.Version, nil
}

// evictOldest drops the least-recently-used result. Caller holds mu.
func (s *Store) evictOldest() {
	back := s.lru.Back()
	if back == nil {
		return
	}
	s.evictions.Add(1)
	v := back.Value.(int)
	e := s.byVer[v]
	s.lru.Remove(back)
	delete(s.byVer, v)
	vers := s.byKey[e.res.Key]
	for i, kv := range vers {
		if kv == v {
			s.byKey[e.res.Key] = append(vers[:i], vers[i+1:]...)
			break
		}
	}
	if len(s.byKey[e.res.Key]) == 0 {
		delete(s.byKey, e.res.Key)
	}
	if s.index != nil {
		os.Remove(s.resultPath(v))
		// Best-effort: a lost evict record re-surfaces the (deleted)
		// result at next open, where the missing file drops it again.
		_ = s.appendIndex(indexRecord{Op: "evict", Version: v})
	}
}

func (s *Store) appendIndex(rec indexRecord) error {
	data, err := json.Marshal(rec)
	if err != nil {
		return err
	}
	_, err = s.index.Write(append(data, '\n'))
	return err
}

// touch marks the entry most-recently-used. Caller holds mu (write).
func (s *Store) touch(e *storedEntry) { s.lru.MoveToFront(e.node) }

// Get returns the result at an exact version and refreshes its recency.
// Evicted versions are gone: false, like versions never assigned.
func (s *Store) Get(version int) (StoredResult, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.byVer[version]
	if !ok {
		return StoredResult{}, false
	}
	s.touch(e)
	return e.res, true
}

// LatestByKey returns the newest retained result with the given content
// key — the exact-match warm-start lookup, O(1) via the key index.
func (s *Store) LatestByKey(key string) (StoredResult, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	vers := s.byKey[key]
	if len(vers) == 0 {
		return StoredResult{}, false
	}
	e := s.byVer[vers[len(vers)-1]]
	s.touch(e)
	return e.res, true
}

// Query returns retained results matching the filters, newest first,
// paginated by q.Limit/q.Offset. total counts every match before
// pagination, so clients can page through without a second endpoint.
func (s *Store) Query(q ResultQuery) (page []StoredResult, total int) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	vers := make([]int, 0, len(s.byVer))
	if q.Key != "" {
		vers = append(vers, s.byKey[q.Key]...)
	} else {
		for v := range s.byVer {
			vers = append(vers, v)
		}
	}
	sort.Sort(sort.Reverse(sort.IntSlice(vers)))
	for _, v := range vers {
		e := s.byVer[v]
		if !q.matches(&e.res) {
			continue
		}
		if total >= q.Offset && (q.Limit <= 0 || len(page) < q.Limit) {
			page = append(page, e.res)
		}
		total++
	}
	return page, total
}

// Latest returns the newest retained result matching scenario/algorithm
// filters (empty matches everything) — the coarse pre-content-key lookup
// kept for CLI convenience.
func (s *Store) Latest(scenarioName, algorithm string) (StoredResult, bool) {
	page, _ := s.Query(ResultQuery{Scenario: scenarioName, Algorithm: algorithm, Limit: 1})
	if len(page) == 0 {
		return StoredResult{}, false
	}
	return page[0], true
}

// Evictions returns how many results the LRU bound has evicted over the
// store's lifetime.
func (s *Store) Evictions() int64 { return s.evictions.Load() }

// Len returns how many results are currently retained.
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.byVer)
}

// Close flushes and closes the on-disk index. In-memory stores no-op.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.index == nil {
		return nil
	}
	err := s.index.Close()
	s.index = nil
	return err
}

// writeFileAtomic writes data via a temp file and rename, so a crash
// mid-write never leaves a truncated result on disk.
func writeFileAtomic(path string, data []byte) error {
	if err := faultinject.StoreWrite(path); err != nil {
		return err
	}
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}
