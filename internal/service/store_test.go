package service

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
)

// storeRes builds a minimal distinct result for store tests.
func storeRes(scenarioName, algo, fp string) StoredResult {
	return StoredResult{
		Scenario:    scenarioName,
		Algorithm:   algo,
		Fingerprint: fp,
		Objectives:  ObjectivesFull,
		Front:       []FrontPoint{{Config: []int{1, 2}, Objs: []float64{1, 2, 3}}},
	}
}

// TestStoreEvictionBoundaries pins the LRU policy at its edges: a store
// bounded at 2 holds exactly 2, eviction order follows recency (Get
// refreshes it), and the key index never dangles after eviction.
func TestStoreEvictionBoundaries(t *testing.T) {
	s, err := NewStore(StoreConfig{MaxResults: 2})
	if err != nil {
		t.Fatal(err)
	}
	v1 := mustPut(t, s, storeRes("a", "nsga2", "fpA"))
	v2 := mustPut(t, s, storeRes("b", "nsga2", "fpB"))
	if s.Len() != 2 {
		t.Fatalf("Len() = %d, want 2", s.Len())
	}
	// Touch v1 so v2 becomes the LRU victim of the next Put.
	if _, ok := s.Get(v1); !ok {
		t.Fatal("v1 missing before eviction")
	}
	v3 := mustPut(t, s, storeRes("c", "nsga2", "fpC"))
	if s.Len() != 2 {
		t.Fatalf("Len() = %d after third put, want 2", s.Len())
	}
	if _, ok := s.Get(v2); ok {
		t.Fatal("v2 survived despite being least recently used")
	}
	for _, v := range []int{v1, v3} {
		if _, ok := s.Get(v); !ok {
			t.Fatalf("v%d evicted, want retained", v)
		}
	}
	// The evicted version's key index entry is gone with it.
	if _, ok := s.LatestByKey(ResultKey("fpB", ObjectivesFull, "nsga2")); ok {
		t.Fatal("key index still resolves the evicted result")
	}
	// An evicted version number is never reused.
	v4 := mustPut(t, s, storeRes("d", "nsga2", "fpD"))
	if v4 != v3+1 {
		t.Fatalf("version after eviction %d, want %d", v4, v3+1)
	}

	// Boundary: a bound of 1 holds exactly the newest put.
	one, err := NewStore(StoreConfig{MaxResults: 1})
	if err != nil {
		t.Fatal(err)
	}
	mustPut(t, one, storeRes("a", "nsga2", "fpA"))
	last := mustPut(t, one, storeRes("b", "nsga2", "fpB"))
	if one.Len() != 1 {
		t.Fatalf("bound-1 store holds %d", one.Len())
	}
	if _, ok := one.Get(last); !ok {
		t.Fatal("bound-1 store lost the newest result")
	}
}

// TestStoreConcurrentPutQuery hammers Put, Get, Query and LatestByKey
// from many goroutines (run under -race) and then checks the
// version/key indexes agree with each other.
func TestStoreConcurrentPutQuery(t *testing.T) {
	s, err := NewStore(StoreConfig{MaxResults: 64})
	if err != nil {
		t.Fatal(err)
	}
	const writers, reads = 8, 50
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		w := w
		wg.Add(2)
		go func() {
			defer wg.Done()
			for i := 0; i < reads; i++ {
				fp := fmt.Sprintf("fp%d", (w*reads+i)%16)
				if _, err := s.Put(storeRes("s", "nsga2", fp)); err != nil {
					t.Error(err)
					return
				}
			}
		}()
		go func() {
			defer wg.Done()
			for i := 0; i < reads; i++ {
				s.Get(i + 1)
				s.LatestByKey(ResultKey(fmt.Sprintf("fp%d", i%16), ObjectivesFull, "nsga2"))
				s.Query(ResultQuery{Fingerprint: fmt.Sprintf("fp%d", i%16), Limit: 4})
			}
		}()
	}
	wg.Wait()
	if s.Len() != 64 {
		t.Fatalf("Len() = %d, want the 64 bound", s.Len())
	}
	// Index consistency: every result the full query surfaces must be
	// reachable through its own content key, and per-key totals must sum
	// to the retained count.
	all, total := s.Query(ResultQuery{})
	if total != 64 || len(all) != 64 {
		t.Fatalf("full query %d/%d, want 64/64", len(all), total)
	}
	perKey := map[string]int{}
	for _, r := range all {
		perKey[r.Key]++
		hit, ok := s.LatestByKey(r.Key)
		if !ok {
			t.Fatalf("version %d unreachable through key %s", r.Version, r.Key)
		}
		if hit.Key != r.Key {
			t.Fatalf("key index returned %s for %s", hit.Key, r.Key)
		}
	}
	sum := 0
	for key, n := range perKey {
		_, keyTotal := s.Query(ResultQuery{Key: key})
		if keyTotal != n {
			t.Fatalf("key %s: query total %d, full scan saw %d", key, keyTotal, n)
		}
		sum += keyTotal
	}
	if sum != 64 {
		t.Fatalf("per-key totals sum to %d, want 64", sum)
	}
}

// TestStorePersistenceRoundTrip kills and recreates the Store on the
// same directory: surviving results, the continuing version counter, and
// recorded evictions must all round-trip through the on-disk index.
func TestStorePersistenceRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s, err := NewStore(StoreConfig{Dir: dir, MaxResults: 8})
	if err != nil {
		t.Fatal(err)
	}
	mustPut(t, s, storeRes("a", "nsga2", "fpA"))
	v2 := mustPut(t, s, storeRes("b", "mosa", "fpB"))
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := NewStore(StoreConfig{Dir: dir, MaxResults: 8})
	if err != nil {
		t.Fatal(err)
	}
	if s2.Len() != 2 {
		t.Fatalf("reopened store holds %d results, want 2", s2.Len())
	}
	r, ok := s2.Get(v2)
	if !ok || r.Scenario != "b" || r.Algorithm != "mosa" || len(r.Front) != 1 {
		t.Fatalf("reopened v2 = %+v, %v", r, ok)
	}
	if r.Key != ResultKey("fpB", ObjectivesFull, "mosa") {
		t.Fatalf("reopened key %q", r.Key)
	}
	// The version counter continues where the dead process stopped.
	v3 := mustPut(t, s2, storeRes("c", "nsga2", "fpC"))
	if v3 != v2+1 {
		t.Fatalf("post-restart version %d, want %d", v3, v2+1)
	}
	if err := s2.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen with a tighter bound: the store trims to it immediately and
	// the trim survives yet another restart.
	s3, err := NewStore(StoreConfig{Dir: dir, MaxResults: 1})
	if err != nil {
		t.Fatal(err)
	}
	if s3.Len() != 1 {
		t.Fatalf("tight reopen holds %d, want 1", s3.Len())
	}
	if _, ok := s3.Get(v3); !ok {
		t.Fatal("tight reopen kept a stale result instead of the newest")
	}
	s3.Close()
	s4, err := NewStore(StoreConfig{Dir: dir, MaxResults: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer s4.Close()
	if s4.Len() != 1 {
		t.Fatalf("store after trimmed restart holds %d, want 1", s4.Len())
	}

	// Crash tolerance: a torn final index line (no trailing newline, half
	// a record) must not prevent reopening, and everything before the
	// tear survives.
	tornDir := t.TempDir()
	s5, err := NewStore(StoreConfig{Dir: tornDir, MaxResults: 8})
	if err != nil {
		t.Fatal(err)
	}
	mustPut(t, s5, storeRes("a", "nsga2", "fpA"))
	s5.Close()
	f, err := os.OpenFile(filepath.Join(tornDir, "index.jsonl"), os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	f.WriteString(`{"op":"put","ver`)
	f.Close()
	s6, err := NewStore(StoreConfig{Dir: tornDir, MaxResults: 8})
	if err != nil {
		t.Fatalf("torn index line broke reopen: %v", err)
	}
	defer s6.Close()
	if s6.Len() != 1 {
		t.Fatalf("store after torn line holds %d, want 1", s6.Len())
	}
}
