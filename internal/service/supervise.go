package service

import (
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"time"

	"wsndse/internal/dse"
	"wsndse/internal/service/snapfile"
)

// PanicError is what the supervisor converts a panicking job attempt
// into: the recovered value plus the goroutine stack captured at the
// panic site. A panic in an evaluator (or any hook running on the search
// goroutine) fails the attempt — and, with retries left, triggers a
// checkpoint-backed retry — instead of killing the whole process.
type PanicError struct {
	Value any
	Stack []byte
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("panic: %v\n%s", e.Value, e.Stack)
}

// maxJobRetries caps Spec.MaxRetries: a job that crashed 17 times in a
// row is not going to be saved by an 18th attempt, and unbounded retry
// of a deterministic panic is a worker-pool denial of service.
const maxJobRetries = 16

// Default retry backoff window. The first retry waits ~RetryBaseDelay,
// each further retry doubles it, capped at RetryMaxDelay, with
// multiplicative jitter in [0.5,1.0) so a batch of jobs felled by one
// shared cause does not retry in lockstep.
const (
	DefaultRetryBaseDelay = 500 * time.Millisecond
	DefaultRetryMaxDelay  = 15 * time.Second
)

// retryDelay computes the backoff before retry number `retry` (1-based):
// capped exponential with jitter. The jitter source is the global
// math/rand — scheduling noise, deliberately outside the search's
// deterministic RNG; results are bit-identical regardless of when a
// retry actually starts.
func retryDelay(retry int, base, max time.Duration) time.Duration {
	if retry < 1 {
		retry = 1
	}
	d := base << (retry - 1)
	if d > max || d <= 0 { // <= 0: shift overflow
		d = max
	}
	return time.Duration(float64(d) * (0.5 + 0.5*rand.Float64()))
}

// errMessage renders err for JobInfo.Error, keeping panic stacks intact.
func errMessage(err error) string {
	if err == nil {
		return ""
	}
	return err.Error()
}

// Checkpoint files are written through a two-slot rotation managed by
// package snapfile: the latest snapshot at <id>.snapshot.json, its
// predecessor at <id>.snapshot.prev.json. Writes are atomic (temp +
// rename) and the bytes carry a SHA-256 (dse.EncodeSnapshotFile), so
// recovery after a crash — even one that tore the latest file at the
// filesystem level — verifies what it reads and falls back one
// checkpoint instead of resuming from garbage.
func snapshotBase(id string) string          { return id + ".snapshot" }
func snapshotPath(dir, id string) string     { return snapfile.Path(dir, snapshotBase(id)) }
func snapshotPrevPath(dir, id string) string { return snapfile.PrevPath(dir, snapshotBase(id)) }

// writeSnapshotFile persists a snapshot through the snapfile rotation.
func writeSnapshotFile(dir, id string, snap *dse.Snapshot) error {
	data, err := dse.EncodeSnapshotFile(snap)
	if err != nil {
		return err
	}
	return snapfile.Write(dir, snapshotBase(id), data)
}

// LoadSnapshot reads a job's durable checkpoint, preferring the latest
// file and falling back to its predecessor when the latest is missing,
// torn, or corrupt (checksum mismatch — the kill-mid-write signature).
// The returned error wraps dse.ErrCorruptSnapshot when candidates
// existed but none verified, and os.ErrNotExist when none existed.
func LoadSnapshot(dir, id string) (*dse.Snapshot, error) {
	snap, err := snapfile.Load(dir, snapshotBase(id), func(path string, data []byte) (*dse.Snapshot, error) {
		snap, err := dse.DecodeSnapshotFile(data)
		if err != nil {
			return nil, fmt.Errorf("service: snapshot %s: %w", filepath.Base(path), err)
		}
		return snap, nil
	})
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			return nil, fmt.Errorf("service: no snapshot for %s: %w", id, os.ErrNotExist)
		}
		return nil, err
	}
	return snap, nil
}

// errJobDeadline is the cancellation cause of a job whose
// deadline_seconds elapsed; runJob maps it to StatusTimedOut.
var errJobDeadline = errors.New("service: job deadline exceeded")
