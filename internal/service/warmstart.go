package service

import (
	"fmt"
	"strconv"

	"wsndse/internal/dse"
	"wsndse/internal/scenario/family"
)

// Warm-start modes on Spec.WarmStart. The zero value is off, so every
// pre-warm-start spec keeps its exact behavior (and its golden front).
const (
	WarmStartOff  = "off"
	WarmStartAuto = "auto"
)

// warmStartVersion parses an explicit-version warm start ("17" or
// "v17"). ok is false for the named modes and for malformed values.
func warmStartVersion(ws string) (int, bool) {
	if ws == "" || ws == WarmStartOff || ws == WarmStartAuto {
		return 0, false
	}
	raw := ws
	if raw[0] == 'v' {
		raw = raw[1:]
	}
	v, err := strconv.Atoi(raw)
	if err != nil || v < 1 {
		return 0, false
	}
	return v, true
}

// warmStartRequested reports whether ws asks for any seeding at all —
// the gate for combinations (resume_job, island jobs) that cannot honor
// a warm start and must reject it rather than silently run cold.
func warmStartRequested(ws string) bool {
	return ws != "" && ws != WarmStartOff
}

// validWarmStart reports whether ws is a well-formed Spec.WarmStart
// value: empty, off, auto, or an explicit version.
func validWarmStart(ws string) bool {
	if ws == "" || ws == WarmStartOff || ws == WarmStartAuto {
		return true
	}
	_, ok := warmStartVersion(ws)
	return ok
}

// WarmStartInfo records how a job's initial population was seeded — the
// part of a warm-started run that is not reproducible from the Spec
// alone, so it is echoed on JobInfo for observability and asserted by
// the restart smoke tests.
type WarmStartInfo struct {
	// Mode is the resolved mode: "auto" or "version".
	Mode string `json:"mode"`
	// Sources are the store versions whose fronts contributed seed
	// points, exact match first, then near-miss transfers newest-first.
	Sources []int `json:"sources,omitempty"`
	// Exact reports whether one of the sources was an exact content-key
	// match (same scenario fingerprint, objectives and algorithm).
	Exact bool `json:"exact"`
	// SeedPoints is how many decision vectors were handed to the search
	// (after space-validity filtering and deduplication).
	SeedPoints int `json:"seed_points"`
}

// warmStartMaxSources caps how many near-miss fronts contribute seeds:
// past a few siblings the transferred points crowd out random diversity
// without adding information.
const warmStartMaxSources = 4

// warmStartMaxSeeds caps the total seed list handed to the search; the
// algorithms additionally cap at their own population/chain sizes.
const warmStartMaxSeeds = 256

// ResultLookup abstracts where prior results come from, so warm-start
// resolution runs identically against the in-process Store (the
// Manager, wsn-explore -warm-start <dir>) and the HTTP API via Client
// (wsn-explore -warm-start <url>).
type ResultLookup interface {
	// LookupResult returns the result at an exact version.
	LookupResult(version int) (StoredResult, bool)
	// QueryResults returns matching results, newest first.
	QueryResults(q ResultQuery) ([]StoredResult, error)
}

// LookupResult implements ResultLookup on the Store.
func (s *Store) LookupResult(version int) (StoredResult, bool) { return s.Get(version) }

// QueryResults implements ResultLookup on the Store.
func (s *Store) QueryResults(q ResultQuery) ([]StoredResult, error) {
	page, _ := s.Query(q)
	return page, nil
}

// ResolveWarmStart turns a Spec.WarmStart directive into the seed
// configurations for a search over space, consulting src for prior
// fronts.
//
// Mode "auto" looks up the exact content key (fingerprint, objectives,
// algorithm) first; whether or not it hits, near-miss fronts — same
// family, same algorithm and objectives, different member content — are
// appended newest-first, because sibling members of a sweep (the
// chipset-sweep workload: one ward re-explored across near-identical
// platforms) have fronts whose decision vectors transfer. An explicit
// version uses exactly that front. Decision vectors that do not index
// the target space (a sibling with a different node count) are dropped
// by the search's own validity filter; duplicates likewise.
//
// Resolution degrades, never fails, on an empty store: a nil info with
// no seeds means "run cold". An explicit version that is missing (or
// evicted since submit-time validation) is an error — the caller asked
// for specific provenance the store cannot provide.
func ResolveWarmStart(src ResultLookup, warmStart, fingerprint string, objectives []string, algorithm, scenarioName string, space *dse.Space) ([]dse.Config, *WarmStartInfo, error) {
	if warmStart == "" || warmStart == WarmStartOff {
		return nil, nil, nil
	}
	key := ResultKey(fingerprint, objectives, algorithm)
	if v, ok := warmStartVersion(warmStart); ok {
		r, ok := src.LookupResult(v)
		if !ok {
			return nil, nil, fmt.Errorf("service: warm-start version %d is not in the result store", v)
		}
		seeds := frontConfigs(r, space, nil)
		return seeds, &WarmStartInfo{
			Mode:       "version",
			Sources:    []int{r.Version},
			Exact:      r.Key == key,
			SeedPoints: len(seeds),
		}, nil
	}
	if warmStart != WarmStartAuto {
		return nil, nil, fmt.Errorf("service: malformed warm_start %q (want off|auto|<version>)", warmStart)
	}

	info := &WarmStartInfo{Mode: WarmStartAuto}
	var seeds []dse.Config
	seen := map[string]bool{}
	add := func(r StoredResult) {
		if len(info.Sources) >= warmStartMaxSources || len(seeds) >= warmStartMaxSeeds {
			return
		}
		before := len(seeds)
		seeds = appendFrontConfigs(seeds, r, space, seen)
		if len(seeds) > before {
			info.Sources = append(info.Sources, r.Version)
		}
	}
	exact, err := src.QueryResults(ResultQuery{Key: key, Limit: 1})
	if err != nil {
		return nil, nil, err
	}
	if len(exact) == 1 {
		info.Exact = true
		add(exact[0])
	}
	if fam, ok := family.FamilyOf(scenarioName); ok {
		near, err := src.QueryResults(ResultQuery{Family: fam, Algorithm: algorithm, Limit: 2 * warmStartMaxSources})
		if err != nil {
			return nil, nil, err
		}
		seenFp := map[string]bool{fingerprint: true}
		for _, r := range near {
			// One source per distinct sibling content, the freshest; the
			// exact key (and re-runs of this very scenario) are covered
			// above.
			if r.Key == key || seenFp[r.Fingerprint] || !sameObjectives(r.Objectives, objectives) {
				continue
			}
			seenFp[r.Fingerprint] = true
			add(r)
		}
	}
	if len(seeds) == 0 {
		return nil, nil, nil // cold store: run unseeded, report nothing
	}
	info.SeedPoints = len(seeds)
	return seeds, info, nil
}

// frontConfigs extracts r's front decision vectors that index space,
// deduplicated.
func frontConfigs(r StoredResult, space *dse.Space, seen map[string]bool) []dse.Config {
	return appendFrontConfigs(nil, r, space, seen)
}

// appendFrontConfigs appends r's valid, unseen front decision vectors to
// dst (seen tracks duplicates across calls; nil allocates a private
// set), capping the grown list at warmStartMaxSeeds.
func appendFrontConfigs(dst []dse.Config, r StoredResult, space *dse.Space, seen map[string]bool) []dse.Config {
	if seen == nil {
		seen = map[string]bool{}
	}
	for _, fp := range r.Front {
		c := dse.Config(fp.Config)
		if !space.Valid(c) {
			continue
		}
		k := c.Key()
		if seen[k] {
			continue
		}
		seen[k] = true
		dst = append(dst, c.Clone())
		if len(dst) >= warmStartMaxSeeds {
			break
		}
	}
	return dst
}

// sameObjectives reports element-wise equality of objective name lists.
func sameObjectives(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
