package service

import (
	"context"
	"fmt"
	"testing"

	"wsndse/internal/casestudy"
	"wsndse/internal/dse"
	"wsndse/internal/scenario"
)

// BenchmarkWarmStartSeeding measures what transfer seeding actually buys:
// generations until the front reaches 95% of a converged reference
// hypervolume, cold versus seeded from a family sibling's archived front.
// Two chipset-sweep members play both roles — telosb seeded from micaz's
// front and vice versa — through the real ResolveWarmStart path, so the
// number reflects the service's near-miss lookup, not an idealized seed
// list. Lower gens_to_target is better; the wall-clock per op is dominated
// by the search itself and carries no signal.
func BenchmarkWarmStartSeeding(b *testing.B) {
	members := []string{
		registerSweepMember(b, "telosb"),
		registerSweepMember(b, "micaz"),
	}
	const (
		pop     = 24
		maxGens = 60
		refSeed = 7
		runSeed = 21
	)

	type compiledMember struct {
		sc    scenario.Scenario
		space *dse.Space
		eval  dse.Evaluator
		ref   dse.Objectives // hypervolume reference point
		front []dse.Point    // converged reference front
	}
	compile := func(name string) *compiledMember {
		sc, ok := scenario.Lookup(name)
		if !ok {
			b.Fatalf("member %s not registered", name)
		}
		problem, err := scenario.NewProblem(sc, casestudy.DefaultCalibration())
		if err != nil {
			b.Fatal(err)
		}
		compiled, err := problem.Compile()
		if err != nil {
			b.Fatal(err)
		}
		m := &compiledMember{sc: sc, space: problem.Space(), eval: compiled.Evaluator()}
		res, err := dse.NSGA2(m.space, m.eval, dse.NSGA2Config{
			PopulationSize: pop, Generations: maxGens, Seed: refSeed, Workers: 1,
		})
		if err != nil {
			b.Fatal(err)
		}
		m.front = res.Front
		m.ref = make(dse.Objectives, len(res.Front[0].Objs))
		for i := range m.ref {
			worst := res.Front[0].Objs[i]
			for _, p := range res.Front {
				if p.Objs[i] > worst {
					worst = p.Objs[i]
				}
			}
			m.ref[i] = worst * 1.1
		}
		return m
	}
	compiledMembers := make(map[string]*compiledMember, len(members))
	for _, name := range members {
		compiledMembers[name] = compile(name)
	}

	// gensToTarget runs a fresh search and reports the generation at which
	// the front's hypervolume first reaches the target (maxGens if never).
	gensToTarget := func(m *compiledMember, seeds []dse.Config, target float64) int {
		ctx, cancel := context.WithCancel(context.Background())
		defer cancel()
		gens := maxGens
		opts := dse.Options{
			Context:    ctx,
			SeedPoints: seeds,
			Progress: func(p dse.Progress) {
				if p.Step < gens && dse.Hypervolume(p.Front, m.ref) >= target {
					gens = p.Step
					cancel()
				}
			},
		}
		_, err := dse.NSGA2Opts(m.space, m.eval, dse.NSGA2Config{
			PopulationSize: pop, Generations: maxGens, Seed: runSeed, Workers: 1,
		}, opts)
		if err != nil && ctx.Err() == nil {
			b.Fatal(err)
		}
		return gens
	}

	for i, name := range members {
		m := compiledMembers[name]
		donor := compiledMembers[members[(i+1)%len(members)]]
		target := 0.95 * dse.Hypervolume(m.front, m.ref)

		// The donor's front, archived under the donor's own fingerprint,
		// reaches the target member only through the family near-miss path.
		store, err := NewStore(StoreConfig{})
		if err != nil {
			b.Fatal(err)
		}
		stored := StoredResult{
			Scenario:    donor.sc.Name,
			Algorithm:   AlgoNSGA2,
			Fingerprint: donor.sc.Fingerprint(),
			Objectives:  ObjectivesFull,
		}
		for _, p := range donor.front {
			stored.Front = append(stored.Front, FrontPoint{Config: p.Config, Objs: p.Objs})
		}
		if _, err := store.Put(stored); err != nil {
			b.Fatal(err)
		}
		seeds, info, err := ResolveWarmStart(store, WarmStartAuto,
			m.sc.Fingerprint(), ObjectivesFull, AlgoNSGA2, m.sc.Name, m.space)
		if err != nil {
			b.Fatal(err)
		}
		if info == nil || info.Exact || len(seeds) == 0 {
			b.Fatalf("near-miss resolution for %s: %+v (%d seeds)", name, info, len(seeds))
		}

		short := fmt.Sprintf("member%d", i)
		b.Run(short+"/cold", func(b *testing.B) {
			gens := 0
			for n := 0; n < b.N; n++ {
				gens = gensToTarget(m, nil, target)
			}
			b.ReportMetric(float64(gens), "gens_to_target")
		})
		b.Run(short+"/seeded", func(b *testing.B) {
			gens := 0
			for n := 0; n < b.N; n++ {
				gens = gensToTarget(m, seeds, target)
			}
			b.ReportMetric(float64(gens), "gens_to_target")
		})
	}
}
