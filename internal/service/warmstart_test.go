package service

import (
	"reflect"
	"strings"
	"testing"

	"wsndse/internal/scenario"
	"wsndse/internal/scenario/family"
)

// registerSweepMember materializes one chipset-sweep member and puts it
// in the scenario registry (idempotent — family.Enable uses the same
// fingerprint-checked path), returning its registered name.
func registerSweepMember(t testing.TB, platformName string) string {
	t.Helper()
	f, ok := family.Lookup("chipset-sweep")
	if !ok {
		t.Fatal("chipset-sweep family not registered")
	}
	v := family.Values{"platform": platformName, "nodes": "n4", "mix": "homo", "payload": "short", "traffic": "uniform"}
	s, err := f.Scenario(v)
	if err != nil {
		t.Fatal(err)
	}
	if existing, ok := scenario.Lookup(s.Name); ok {
		if existing.Fingerprint() != s.Fingerprint() {
			t.Fatalf("member %s already registered with different content", s.Name)
		}
		return s.Name
	}
	if err := scenario.Register(s); err != nil {
		t.Fatal(err)
	}
	return s.Name
}

func TestWarmStartAutoExactHit(t *testing.T) {
	m := newTestManager(t, Config{Workers: 1})
	defer m.Close()

	cold, err := m.Submit(smallNSGA2("ecg-ward", 7))
	if err != nil {
		t.Fatal(err)
	}
	coldInfo := waitDone(t, m, cold.ID)
	if coldInfo.WarmStart != nil {
		t.Fatalf("cold job reports warm start %+v", coldInfo.WarmStart)
	}

	spec := smallNSGA2("ecg-ward", 8)
	spec.WarmStart = WarmStartAuto
	warm, err := m.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	info := waitDone(t, m, warm.ID)
	if info.Status != StatusDone {
		t.Fatalf("warm job %s: %s", info.Status, info.Error)
	}
	ws := info.WarmStart
	if ws == nil {
		t.Fatal("warm_start auto against a primed store reported nothing")
	}
	if ws.Mode != WarmStartAuto || !ws.Exact || ws.SeedPoints == 0 {
		t.Fatalf("warm start info %+v", ws)
	}
	if len(ws.Sources) != 1 || ws.Sources[0] != coldInfo.ResultVersion {
		t.Fatalf("warm start sources %v, want [%d]", ws.Sources, coldInfo.ResultVersion)
	}
}

// TestWarmStartAutoAgainstEmptyStore: auto degrades to a cold run.
func TestWarmStartAutoAgainstEmptyStore(t *testing.T) {
	m := newTestManager(t, Config{Workers: 1})
	defer m.Close()
	spec := smallNSGA2("ecg-ward", 3)
	spec.WarmStart = WarmStartAuto
	info, err := m.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	final := waitDone(t, m, info.ID)
	if final.Status != StatusDone {
		t.Fatalf("job %s: %s", final.Status, final.Error)
	}
	if final.WarmStart != nil {
		t.Fatalf("empty-store auto run reports %+v", final.WarmStart)
	}
	// And it is bit-identical to a plain cold run of the same spec.
	coldInfo, err := m.Submit(smallNSGA2("ecg-ward", 3))
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, m, coldInfo.ID)
	a, _ := m.Front(info.ID)
	b, _ := m.Front(coldInfo.ID)
	if !reflect.DeepEqual(a.Front, b.Front) {
		t.Fatal("empty-store auto run differs from cold run")
	}
}

func TestWarmStartExplicitVersion(t *testing.T) {
	m := newTestManager(t, Config{Workers: 1})
	defer m.Close()
	cold, err := m.Submit(smallNSGA2("ecg-ward", 7))
	if err != nil {
		t.Fatal(err)
	}
	coldInfo := waitDone(t, m, cold.ID)

	for _, form := range []string{"1", "v1"} {
		spec := smallNSGA2("ecg-ward", 9)
		spec.WarmStart = form
		warm, err := m.Submit(spec)
		if err != nil {
			t.Fatalf("warm_start %q rejected: %v", form, err)
		}
		info := waitDone(t, m, warm.ID)
		ws := info.WarmStart
		if ws == nil || ws.Mode != "version" || !ws.Exact || ws.SeedPoints == 0 {
			t.Fatalf("warm_start %q info %+v", form, ws)
		}
		if len(ws.Sources) != 1 || ws.Sources[0] != coldInfo.ResultVersion {
			t.Fatalf("warm_start %q sources %v", form, ws.Sources)
		}
	}

	// A version the store does not hold fails at submit time.
	spec := smallNSGA2("ecg-ward", 9)
	spec.WarmStart = "v999"
	if _, err := m.Submit(spec); err == nil || !strings.Contains(err.Error(), "not in the result store") {
		t.Fatalf("missing warm-start version accepted: %v", err)
	}
	// Malformed values fail validation.
	for _, bad := range []string{"banana", "v-3", "0", "-1", "vv2"} {
		spec.WarmStart = bad
		if _, err := m.Submit(spec); err == nil {
			t.Fatalf("malformed warm_start %q accepted", bad)
		}
	}
}

// TestWarmStartNearMissTransfer is the transfer-seeding scenario from
// the chipset-sweep workload: no front exists for this member, but a
// sibling (same family, different platform) has one, and its decision
// vectors seed the new search.
func TestWarmStartNearMissTransfer(t *testing.T) {
	donor := registerSweepMember(t, "telosb")
	target := registerSweepMember(t, "micaz")

	m := newTestManager(t, Config{Workers: 1})
	defer m.Close()
	cold, err := m.Submit(smallNSGA2(donor, 7))
	if err != nil {
		t.Fatal(err)
	}
	coldInfo := waitDone(t, m, cold.ID)
	if coldInfo.Status != StatusDone {
		t.Fatalf("donor job %s: %s", coldInfo.Status, coldInfo.Error)
	}

	spec := smallNSGA2(target, 8)
	spec.WarmStart = WarmStartAuto
	warm, err := m.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	info := waitDone(t, m, warm.ID)
	if info.Status != StatusDone {
		t.Fatalf("warm job %s: %s", info.Status, info.Error)
	}
	ws := info.WarmStart
	if ws == nil {
		t.Fatal("sibling front did not seed the run")
	}
	if ws.Exact {
		t.Fatalf("near-miss transfer claims an exact hit: %+v", ws)
	}
	if ws.SeedPoints == 0 || len(ws.Sources) != 1 || ws.Sources[0] != coldInfo.ResultVersion {
		t.Fatalf("transfer info %+v, want seeds from version %d", ws, coldInfo.ResultVersion)
	}
}

// TestWarmStartDeterministic: two managers with identical store content
// produce bit-identical warm-started fronts — seeding is part of the
// determinism contract, not an exception to it.
func TestWarmStartDeterministic(t *testing.T) {
	runWarm := func() []FrontPoint {
		m := newTestManager(t, Config{Workers: 1})
		defer m.Close()
		cold, err := m.Submit(smallNSGA2("ecg-ward", 7))
		if err != nil {
			t.Fatal(err)
		}
		waitDone(t, m, cold.ID)
		spec := smallNSGA2("ecg-ward", 21)
		spec.WarmStart = WarmStartAuto
		warm, err := m.Submit(spec)
		if err != nil {
			t.Fatal(err)
		}
		info := waitDone(t, m, warm.ID)
		if info.WarmStart == nil || info.WarmStart.SeedPoints == 0 {
			t.Fatalf("warm start info %+v", info.WarmStart)
		}
		front, err := m.Front(warm.ID)
		if err != nil {
			t.Fatal(err)
		}
		return front.Front
	}
	if a, b := runWarm(), runWarm(); !reflect.DeepEqual(a, b) {
		t.Fatal("warm-started fronts differ across identical managers")
	}
}

// TestResolveWarmStartOff covers the off/empty fast path and the
// baseline-objectives guard: a two-objective front must never seed a
// three-objective search even for the same scenario content.
func TestResolveWarmStartOff(t *testing.T) {
	s, err := NewStore(StoreConfig{})
	if err != nil {
		t.Fatal(err)
	}
	for _, ws := range []string{"", WarmStartOff} {
		seeds, info, err := ResolveWarmStart(s, ws, "fp", ObjectivesFull, "nsga2", "ecg-ward", nil)
		if seeds != nil || info != nil || err != nil {
			t.Fatalf("warm_start %q: %v %v %v", ws, seeds, info, err)
		}
	}

	sc, _ := scenario.Lookup("ecg-ward")
	fp := sc.Fingerprint()
	mustPut(t, s, StoredResult{
		Scenario: "ecg-ward", Algorithm: "nsga2", Fingerprint: fp,
		Objectives: ObjectivesBaseline,
		Front:      []FrontPoint{{Config: []int{0, 0}, Objs: []float64{1, 2}}},
	})
	// The key embeds the objective set, so the baseline front is not an
	// exact hit for a full-objective search; ecg-ward has no family, so
	// there is no near-miss path either → cold.
	seeds, info, err := ResolveWarmStart(s, WarmStartAuto, fp, ObjectivesFull, "nsga2", "ecg-ward", nil)
	if err != nil {
		t.Fatal(err)
	}
	if seeds != nil || info != nil {
		t.Fatalf("baseline front seeded a full-objective search: %v %+v", seeds, info)
	}
}
