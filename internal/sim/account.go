package sim

import (
	"fmt"

	"wsndse/internal/radio"
)

// RadioState is one of the transceiver's power states.
type RadioState int

// Radio power states, ordered roughly by consumption.
const (
	StateSleep RadioState = iota
	StateIdle
	StateRamp // oscillator/PLL settling after leaving sleep
	StateRx
	StateTx
)

// String names the state.
func (s RadioState) String() string {
	switch s {
	case StateSleep:
		return "sleep"
	case StateIdle:
		return "idle"
	case StateRamp:
		return "ramp"
	case StateRx:
		return "rx"
	case StateTx:
		return "tx"
	default:
		return fmt.Sprintf("RadioState(%d)", int(s))
	}
}

// numRadioStates sizes the per-state residency array (states are the
// contiguous iota block StateSleep..StateTx).
const numRadioStates = int(StateTx) + 1

// radioAccount integrates radio energy over the state trajectory. State
// residency accrues into a fixed array — the accounting runs on every
// radio event, and an array index is both faster than a map probe and
// allocation-free.
type radioAccount struct {
	chip  radio.Chip
	state RadioState
	since float64

	energy    float64                 // total joules
	stateTime [numRadioStates]float64 // seconds per state
	ramps     int
}

func newRadioAccount(chip radio.Chip) *radioAccount {
	return &radioAccount{
		chip:  chip,
		state: StateSleep,
	}
}

// power returns the draw of a state in watts.
func (r *radioAccount) power(s RadioState) float64 {
	switch s {
	case StateSleep:
		return float64(r.chip.SleepPower)
	case StateIdle:
		return float64(r.chip.IdlePower)
	case StateRamp:
		// Ramp is accounted as an explicit energy packet on entry;
		// the residency itself draws idle-level current.
		return float64(r.chip.IdlePower)
	case StateRx:
		return float64(r.chip.RxPower)
	case StateTx:
		return float64(r.chip.TxPower)
	default:
		panic("sim: unknown radio state")
	}
}

// setState accrues energy in the old state and switches to the new one.
// Entering Ramp additionally charges the chip's fixed ramp-up energy.
func (r *radioAccount) setState(now float64, s RadioState) {
	if now < r.since {
		panic(fmt.Sprintf("sim: radio time going backwards: %.9f < %.9f", now, r.since))
	}
	dt := now - r.since
	r.energy += dt * r.power(r.state)
	r.stateTime[r.state] += dt
	r.since = now
	if s == StateRamp && r.state != StateRamp {
		r.energy += float64(r.chip.RampUpEnergy)
		r.ramps++
	}
	r.state = s
}

// finish closes the account at the end of the simulation.
func (r *radioAccount) finish(now float64) {
	r.setState(now, r.state)
}
