package sim

import (
	"fmt"

	"wsndse/internal/app"
	ieee "wsndse/internal/ieee802154"
	"wsndse/internal/platform"
	"wsndse/internal/units"
)

// ArrivalModel selects how application output bytes enter the transmit
// queue.
type ArrivalModel int

// Arrival models.
const (
	// ArrivalDefault defers to the surrounding default: on a NodeConfig
	// it inherits the Config-level model, on a Config it means uniform.
	// Being the zero value, per-node overrides are strictly opt-in.
	ArrivalDefault ArrivalModel = iota
	// ArrivalUniform streams output bytes at the constant rate φ_out —
	// the paper's assumption ("the nature of data compression ... leads
	// to a uniform output rate", §4.2) under which the Eq. 9 delay
	// bound is valid.
	ArrivalUniform
	// ArrivalBlock releases a whole compressed block at once every
	// block period — the bursty behaviour of a block codec without
	// output smoothing. Provided for the ablation showing how the
	// delay bound degrades when the uniformity assumption breaks.
	ArrivalBlock
)

// String names the arrival model.
func (a ArrivalModel) String() string {
	switch a {
	case ArrivalDefault:
		return "default"
	case ArrivalUniform:
		return "uniform"
	case ArrivalBlock:
		return "block"
	default:
		return fmt.Sprintf("ArrivalModel(%d)", int(a))
	}
}

// LinkPhase is one piecewise-constant segment of a node's time-varying
// link quality: from Start onward (until the next phase) the node's frames
// are lost i.i.d. with probability PER. A schedule of phases models
// mobility — a relay carried across a ward sees its link to the
// coordinator degrade and recover as distance and shadowing change —
// without simulating radio propagation itself.
type LinkPhase struct {
	Start units.Seconds
	PER   float64
}

// ValidateLink checks a link schedule: phases strictly ascending in Start,
// starts non-negative, PERs in [0,1). Scenario validation and the sim
// share this so an invalid schedule can never reach the engine.
func ValidateLink(phases []LinkPhase) error {
	for i, ph := range phases {
		if ph.Start < 0 {
			return fmt.Errorf("link phase %d starts at negative time %v", i, ph.Start)
		}
		if i > 0 && ph.Start <= phases[i-1].Start {
			return fmt.Errorf("link phase %d start %v not after phase %d start %v",
				i, ph.Start, i-1, phases[i-1].Start)
		}
		if ph.PER < 0 || ph.PER >= 1 {
			return fmt.Errorf("link phase %d PER %g out of [0,1)", i, ph.PER)
		}
	}
	return nil
}

// NodeConfig describes one simulated node. Payload and arrival overrides
// make the star heterogeneous: a ward can mix ECG compressors shipping
// full frames, low-rate telemetry motes on short frames, and bursty
// block-codec nodes in one superframe.
type NodeConfig struct {
	Name       string
	Platform   platform.Platform
	App        app.Application
	SampleFreq units.Hertz
	MicroFreq  units.Hertz
	// Slots is the node's GTS allocation per superframe (the k^(n) of
	// the model's assignment).
	Slots int
	// PayloadBytes overrides the network payload L_payload for this
	// node's frames (0 inherits Config.PayloadBytes).
	PayloadBytes int
	// Arrival overrides the traffic model for this node
	// (ArrivalDefault inherits Config.Arrival).
	Arrival ArrivalModel
	// Link is the node's time-varying link schedule. Empty means the
	// link holds Config.PacketErrorRate for the whole run; otherwise the
	// node uses Config.PacketErrorRate before the first phase's Start
	// and each phase's PER from its Start onward.
	Link []LinkPhase
}

// payload resolves the node's effective frame payload.
func (n NodeConfig) payload(networkPayload int) int {
	if n.PayloadBytes > 0 {
		return n.PayloadBytes
	}
	return networkPayload
}

// arrival resolves the node's effective traffic model.
func (n NodeConfig) arrival(networkArrival ArrivalModel) ArrivalModel {
	if n.Arrival != ArrivalDefault {
		return n.Arrival
	}
	return networkArrival
}

// Config describes one simulation run.
type Config struct {
	Superframe   ieee.SuperframeConfig
	PayloadBytes int // L_payload
	Nodes        []NodeConfig

	// Duration is the simulated wall-clock time.
	Duration units.Seconds

	// Arrival selects the traffic model (uniform by default).
	Arrival ArrivalModel
	// BlockSamples sets the codec block size for ArrivalBlock
	// (default 512 samples).
	BlockSamples int

	// PacketErrorRate is the i.i.d. frame loss probability on the
	// channel; lost frames are retransmitted up to MaxRetries times.
	// The case study operates at 0 (§4.3).
	PacketErrorRate float64
	// MaxRetries bounds retransmissions per frame (default 3).
	MaxRetries int

	// GuardTime is the early-wakeup margin before each beacon. Real
	// firmware derives it from crystal drift over one beacon interval;
	// when zero it defaults to ClockDriftPPM·BI + 32 µs.
	GuardTime units.Seconds
	// ClockDriftPPM is the crystal tolerance used for the default
	// guard time (default 40 ppm).
	ClockDriftPPM float64

	// Firmware processing overheads charged to the microcontroller on
	// top of the application's cycle budget. Defaults: 600 cycles per
	// beacon, 350 per transmitted packet.
	BeaconProcCycles float64
	PacketProcCycles float64

	// Seed drives the channel's loss process.
	Seed int64
}

// withDefaults fills zero values.
func (c Config) withDefaults() Config {
	if c.Arrival == ArrivalDefault {
		c.Arrival = ArrivalUniform
	}
	if c.BlockSamples == 0 {
		c.BlockSamples = 512
	}
	if c.MaxRetries == 0 {
		c.MaxRetries = 3
	}
	if c.ClockDriftPPM == 0 {
		c.ClockDriftPPM = 40
	}
	if c.GuardTime == 0 {
		c.GuardTime = units.Seconds(c.ClockDriftPPM*1e-6*float64(c.Superframe.BeaconInterval()) + 32e-6)
	}
	if c.BeaconProcCycles == 0 {
		c.BeaconProcCycles = 600
	}
	if c.PacketProcCycles == 0 {
		c.PacketProcCycles = 350
	}
	return c
}

// Validate checks the configuration for consistency before a run.
func (c Config) Validate() error {
	if err := c.Superframe.Validate(); err != nil {
		return err
	}
	if c.PayloadBytes < 1 || c.PayloadBytes > ieee.MaxDataPayload {
		return fmt.Errorf("sim: payload %d out of range [1,%d]", c.PayloadBytes, ieee.MaxDataPayload)
	}
	if len(c.Nodes) == 0 {
		return fmt.Errorf("sim: no nodes")
	}
	if c.Duration <= 0 {
		return fmt.Errorf("sim: duration %v must be positive", c.Duration)
	}
	if c.PacketErrorRate < 0 || c.PacketErrorRate >= 1 {
		return fmt.Errorf("sim: packet error rate %g out of [0,1)", c.PacketErrorRate)
	}
	if c.Arrival != ArrivalDefault && c.Arrival != ArrivalUniform && c.Arrival != ArrivalBlock {
		return fmt.Errorf("sim: unknown arrival model %v", c.Arrival)
	}
	totalSlots := 0
	for i, n := range c.Nodes {
		if n.App == nil {
			return fmt.Errorf("sim: node %d (%s) has no application", i, n.Name)
		}
		if n.SampleFreq <= 0 || n.MicroFreq <= 0 {
			return fmt.Errorf("sim: node %d (%s) has non-positive frequencies", i, n.Name)
		}
		if n.Slots < 0 {
			return fmt.Errorf("sim: node %d (%s) has negative slot count", i, n.Name)
		}
		if n.PayloadBytes < 0 || n.PayloadBytes > ieee.MaxDataPayload {
			return fmt.Errorf("sim: node %d (%s) payload override %d out of range [0,%d]",
				i, n.Name, n.PayloadBytes, ieee.MaxDataPayload)
		}
		if a := n.Arrival; a != ArrivalDefault && a != ArrivalUniform && a != ArrivalBlock {
			return fmt.Errorf("sim: node %d (%s) has unknown arrival model %v", i, n.Name, a)
		}
		if err := ValidateLink(n.Link); err != nil {
			return fmt.Errorf("sim: node %d (%s): %w", i, n.Name, err)
		}
		if err := n.Platform.Validate(); err != nil {
			return fmt.Errorf("sim: node %d (%s): %w", i, n.Name, err)
		}
		totalSlots += n.Slots
	}
	if totalSlots > ieee.MaxGTS {
		return fmt.Errorf("sim: %d GTS slots allocated, protocol allows %d", totalSlots, ieee.MaxGTS)
	}
	return nil
}

// EnergyAccount is the integrated per-node energy split, in joules over
// the run, with the average power alongside.
type EnergyAccount struct {
	Sensor units.Joules
	Micro  units.Joules
	Memory units.Joules
	Radio  units.Joules
	Total  units.Joules
}

// Power converts the account to average watts over the given duration.
func (e EnergyAccount) Power(d units.Seconds) PowerBreakdown {
	return PowerBreakdown{
		Sensor: e.Sensor.PerSecond(d),
		Micro:  e.Micro.PerSecond(d),
		Memory: e.Memory.PerSecond(d),
		Radio:  e.Radio.PerSecond(d),
		Total:  e.Total.PerSecond(d),
	}
}

// PowerBreakdown is the average-power view of an EnergyAccount, directly
// comparable with the model's EnergyBreakdown.
type PowerBreakdown struct {
	Sensor, Micro, Memory, Radio, Total units.Watts
}

// DelayStats summarizes per-packet delays (generation of the first byte to
// acknowledged delivery).
type DelayStats struct {
	Count int
	Mean  units.Seconds
	Max   units.Seconds
	P95   units.Seconds
}

// NodeResult is the per-node outcome of a run.
type NodeResult struct {
	Name           string
	Energy         EnergyAccount
	Power          PowerBreakdown
	Delay          DelayStats
	PacketsSent    int // distinct frames delivered
	Retries        int // extra transmission attempts
	PacketsDropped int // frames abandoned after MaxRetries
	BytesDelivered int
	QueuePeak      int // packets
	RadioStateTime map[RadioState]units.Seconds
	Ramps          int
}

// Result is the outcome of one simulation run.
type Result struct {
	Duration    units.Seconds
	Nodes       []NodeResult
	BeaconsSent int
	// Events counts the discrete events the engine dispatched during the
	// run — the numerator of the events-per-second throughput figure.
	Events int64
	// Stable reports whether every node's queue drained periodically;
	// false means the GTS allocation cannot carry the offered load and
	// delays/queues grew through the run.
	Stable bool
}
