// Package sim is a packet-level discrete-event simulator for beacon-enabled
// IEEE 802.15.4 star networks with device-level energy accounting.
//
// It plays two roles in the reproduction, standing in for artifacts the
// paper had and we do not:
//
//   - the "real measurement" reference of Figures 3–4: the simulator
//     integrates fine-grained per-event costs (radio ramp-ups, guard
//     times, turnarounds, per-beacon and per-packet processing, the
//     CR-dependent firmware load) that the closed-form model neglects,
//     so model-vs-simulation discrepancies have the same origin and
//     magnitude as the paper's model-vs-hardware errors;
//   - the Castalia-equivalent network simulator of §5.1–5.2: per-packet
//     delays for validating the Eq. 9 bound, and a wall-clock cost per
//     evaluated configuration to compare against the analytical model.
//
// The engine is deterministic: identical configurations and seeds produce
// identical results, event ties resolving in schedule order.
package sim

import "fmt"

// evClosure is the reserved event kind for callbacks scheduled through the
// At/After compatibility wrappers; every typed kind the dispatcher handles
// must be nonzero.
const evClosure uint8 = 0

// event is one slab slot. Scheduled events live in the slab and are
// addressed by index from the heap; idle slots chain through next on the
// free list. Typed events carry (kind, node, arg) and cost no allocation;
// closure events (kind 0) carry fn.
type event struct {
	time float64 // absolute simulation time, seconds
	seq  int64   // tiebreaker: FIFO among simultaneous events
	arg  float64
	fn   func() // evClosure only
	next int32  // free-list link while the slot is idle
	node int32
	kind uint8
}

// Engine is the discrete-event scheduler. Events are value slots in a slab
// recycled through a free list and ordered by a manual min-heap of slab
// indices, so steady-state scheduling and dispatch perform zero heap
// allocations: no per-event box, no container/heap interface boxing, and —
// for typed events — no closure either.
type Engine struct {
	now        float64
	seq        int64
	dispatched int64
	slab       []event
	heap       []int32
	free       int32 // head of the idle-slot list, -1 when empty
	dispatch   func(kind uint8, node int32, arg float64)
}

// NewEngine returns an engine at time zero.
func NewEngine() *Engine { return &Engine{free: -1} }

// SetDispatcher installs the typed-event handler. Schedule panics without
// one at dispatch time; pure At/After users never need it.
func (e *Engine) SetDispatcher(fn func(kind uint8, node int32, arg float64)) { e.dispatch = fn }

// Now returns the current simulation time in seconds.
func (e *Engine) Now() float64 { return e.now }

// Schedule arms a typed event at absolute time t: at dispatch the engine
// calls the installed dispatcher with (kind, node, arg). kind 0 is
// reserved for closures. Scheduling in the past is a programming error and
// panics.
func (e *Engine) Schedule(t float64, kind uint8, node int32, arg float64) {
	if kind == evClosure {
		panic("sim: event kind 0 is reserved for At/After closures")
	}
	e.push(t, kind, node, arg, nil)
}

// ScheduleAfter schedules a typed event delay seconds from now.
func (e *Engine) ScheduleAfter(delay float64, kind uint8, node int32, arg float64) {
	if delay < 0 {
		panic(fmt.Sprintf("sim: negative delay %.9f", delay))
	}
	e.Schedule(e.now+delay, kind, node, arg)
}

// At schedules fn at absolute time t. Scheduling in the past is a
// programming error and panics.
func (e *Engine) At(t float64, fn func()) {
	e.push(t, evClosure, -1, 0, fn)
}

// After schedules fn delay seconds from now.
func (e *Engine) After(delay float64, fn func()) {
	if delay < 0 {
		panic(fmt.Sprintf("sim: negative delay %.9f", delay))
	}
	e.At(e.now+delay, fn)
}

// push claims a slab slot (free list first, growth only when every slot is
// live) and sifts its index into the heap.
func (e *Engine) push(t float64, kind uint8, node int32, arg float64, fn func()) {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling at %.9f before now %.9f", t, e.now))
	}
	e.seq++
	var slot int32
	if e.free >= 0 {
		slot = e.free
		e.free = e.slab[slot].next
	} else {
		e.slab = append(e.slab, event{})
		slot = int32(len(e.slab) - 1)
	}
	ev := &e.slab[slot]
	ev.time, ev.seq, ev.kind, ev.node, ev.arg, ev.fn = t, e.seq, kind, node, arg, fn
	e.heap = append(e.heap, slot)
	e.siftUp(len(e.heap) - 1)
}

// less orders slab slots by (time, seq).
func (e *Engine) less(a, b int32) bool {
	x, y := &e.slab[a], &e.slab[b]
	if x.time != y.time {
		return x.time < y.time
	}
	return x.seq < y.seq
}

func (e *Engine) siftUp(i int) {
	h := e.heap
	for i > 0 {
		parent := (i - 1) / 2
		if !e.less(h[i], h[parent]) {
			return
		}
		h[i], h[parent] = h[parent], h[i]
		i = parent
	}
}

func (e *Engine) siftDown(i int) {
	h := e.heap
	n := len(h)
	for {
		l := 2*i + 1
		if l >= n {
			return
		}
		small := l
		if r := l + 1; r < n && e.less(h[r], h[l]) {
			small = r
		}
		if !e.less(h[small], h[i]) {
			return
		}
		h[i], h[small] = h[small], h[i]
		i = small
	}
}

// Run processes events in order until the queue empties or the next event
// lies beyond `until`; the clock finishes at `until` exactly.
func (e *Engine) Run(until float64) {
	for len(e.heap) > 0 {
		slot := e.heap[0]
		ev := &e.slab[slot]
		if ev.time > until {
			break
		}
		n := len(e.heap) - 1
		e.heap[0] = e.heap[n]
		e.heap = e.heap[:n]
		if n > 0 {
			e.siftDown(0)
		}
		// Copy the payload out and recycle the slot before dispatching,
		// so the handler can schedule into it; drop the closure reference
		// so recycled slots never retain captured state.
		t, kind, node, arg, fn := ev.time, ev.kind, ev.node, ev.arg, ev.fn
		ev.fn = nil
		ev.next = e.free
		e.free = slot
		e.now = t
		e.dispatched++
		if kind == evClosure {
			fn()
		} else {
			e.dispatch(kind, node, arg)
		}
	}
	if e.now < until {
		e.now = until
	}
}

// Pending returns the number of queued events, for tests.
func (e *Engine) Pending() int { return len(e.heap) }

// Dispatched returns how many events have been processed — the numerator
// of the events-per-second throughput the CLIs report.
func (e *Engine) Dispatched() int64 { return e.dispatched }
