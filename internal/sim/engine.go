// Package sim is a packet-level discrete-event simulator for beacon-enabled
// IEEE 802.15.4 star networks with device-level energy accounting.
//
// It plays two roles in the reproduction, standing in for artifacts the
// paper had and we do not:
//
//   - the "real measurement" reference of Figures 3–4: the simulator
//     integrates fine-grained per-event costs (radio ramp-ups, guard
//     times, turnarounds, per-beacon and per-packet processing, the
//     CR-dependent firmware load) that the closed-form model neglects,
//     so model-vs-simulation discrepancies have the same origin and
//     magnitude as the paper's model-vs-hardware errors;
//   - the Castalia-equivalent network simulator of §5.1–5.2: per-packet
//     delays for validating the Eq. 9 bound, and a wall-clock cost per
//     evaluated configuration to compare against the analytical model.
//
// The engine is deterministic: identical configurations and seeds produce
// identical results, event ties resolving in schedule order.
package sim

import (
	"container/heap"
	"fmt"
)

// event is one scheduled callback.
type event struct {
	time float64 // absolute simulation time, seconds
	seq  int64   // tiebreaker: FIFO among simultaneous events
	fn   func()
}

// eventHeap is a min-heap on (time, seq).
type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].time != h[j].time {
		return h[i].time < h[j].time
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}

// Engine is the discrete-event scheduler.
type Engine struct {
	now   float64
	queue eventHeap
	seq   int64
}

// NewEngine returns an engine at time zero.
func NewEngine() *Engine { return &Engine{} }

// Now returns the current simulation time in seconds.
func (e *Engine) Now() float64 { return e.now }

// At schedules fn at absolute time t. Scheduling in the past is a
// programming error and panics.
func (e *Engine) At(t float64, fn func()) {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling at %.9f before now %.9f", t, e.now))
	}
	e.seq++
	heap.Push(&e.queue, &event{time: t, seq: e.seq, fn: fn})
}

// After schedules fn delay seconds from now.
func (e *Engine) After(delay float64, fn func()) {
	if delay < 0 {
		panic(fmt.Sprintf("sim: negative delay %.9f", delay))
	}
	e.At(e.now+delay, fn)
}

// Run processes events in order until the queue empties or the next event
// lies beyond `until`; the clock finishes at `until` exactly.
func (e *Engine) Run(until float64) {
	for len(e.queue) > 0 {
		next := e.queue[0]
		if next.time > until {
			break
		}
		heap.Pop(&e.queue)
		e.now = next.time
		next.fn()
	}
	if e.now < until {
		e.now = until
	}
}

// Pending returns the number of queued events, for tests.
func (e *Engine) Pending() int { return len(e.queue) }
