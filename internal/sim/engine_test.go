package sim

import (
	"testing"
)

func TestEngineOrdering(t *testing.T) {
	e := NewEngine()
	var order []int
	e.At(0.3, func() { order = append(order, 3) })
	e.At(0.1, func() { order = append(order, 1) })
	e.At(0.2, func() { order = append(order, 2) })
	e.Run(1)
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Errorf("order = %v", order)
	}
	if e.Now() != 1 {
		t.Errorf("final time = %g, want 1", e.Now())
	}
}

func TestEngineFIFOAmongTies(t *testing.T) {
	e := NewEngine()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.At(0.5, func() { order = append(order, i) })
	}
	e.Run(1)
	for i, v := range order {
		if v != i {
			t.Fatalf("tie order = %v", order)
		}
	}
}

func TestEngineStopsAtHorizon(t *testing.T) {
	e := NewEngine()
	ran := false
	e.At(2.0, func() { ran = true })
	e.Run(1)
	if ran {
		t.Error("event beyond the horizon ran")
	}
	if e.Pending() != 1 {
		t.Errorf("pending = %d, want 1", e.Pending())
	}
	// Continuing past the horizon runs it.
	e.Run(3)
	if !ran {
		t.Error("event not run on extended horizon")
	}
}

func TestEngineChainedScheduling(t *testing.T) {
	e := NewEngine()
	count := 0
	var tick func()
	tick = func() {
		count++
		e.After(0.1, tick)
	}
	e.After(0.1, tick)
	e.Run(1.05)
	if count != 10 {
		t.Errorf("ticks = %d, want 10", count)
	}
}

func TestEngineTypedEvents(t *testing.T) {
	e := NewEngine()
	type rec struct {
		kind uint8
		node int32
		arg  float64
	}
	var got []rec
	e.SetDispatcher(func(kind uint8, node int32, arg float64) {
		got = append(got, rec{kind, node, arg})
	})
	e.Schedule(0.2, 2, 7, 1.5)
	e.Schedule(0.1, 1, -1, 0)
	order := 0
	e.At(0.2, func() { order = len(got) }) // tie with the typed 0.2 event: FIFO
	e.Run(1)
	want := []rec{{1, -1, 0}, {2, 7, 1.5}}
	if len(got) != 2 || got[0] != want[0] || got[1] != want[1] {
		t.Fatalf("dispatched %v, want %v", got, want)
	}
	if order != 2 {
		t.Errorf("closure ran before the earlier-scheduled typed tie (saw %d events)", order)
	}
	if e.Dispatched() != 3 {
		t.Errorf("Dispatched = %d, want 3", e.Dispatched())
	}
}

func TestEngineKindZeroReserved(t *testing.T) {
	e := NewEngine()
	defer func() {
		if recover() == nil {
			t.Error("Schedule with kind 0 should panic")
		}
	}()
	e.Schedule(1, 0, 0, 0)
}

// TestEngineSlotReuse checks the free list: a self-rescheduling chain of
// events must run in a single recycled slab slot.
func TestEngineSlotReuse(t *testing.T) {
	e := NewEngine()
	count := 0
	e.SetDispatcher(func(kind uint8, node int32, arg float64) {
		count++
		if count < 1000 {
			e.ScheduleAfter(0.001, 1, 0, 0)
		}
	})
	e.ScheduleAfter(0.001, 1, 0, 0)
	e.Run(10)
	if count != 1000 {
		t.Fatalf("ran %d events, want 1000", count)
	}
	if len(e.slab) != 1 {
		t.Errorf("slab grew to %d slots for a 1-deep chain", len(e.slab))
	}
}

// TestEngineTypedZeroAllocs pins the zero-alloc event core: once the slab
// and heap are warm, scheduling and dispatching typed events allocates
// nothing.
func TestEngineTypedZeroAllocs(t *testing.T) {
	e := NewEngine()
	e.SetDispatcher(func(kind uint8, node int32, arg float64) {})
	for i := 0; i < 64; i++ { // warm slab and heap capacity
		e.ScheduleAfter(0.001, 1, int32(i), 0)
	}
	e.Run(1)
	allocs := testing.AllocsPerRun(200, func() {
		for i := 0; i < 64; i++ {
			e.ScheduleAfter(0.001, 1, int32(i), float64(i))
		}
		e.Run(e.Now() + 1)
	})
	if allocs != 0 {
		t.Fatalf("typed schedule+dispatch allocates %.1f objects per 64-event batch, want 0", allocs)
	}
}

func TestEnginePastSchedulingPanics(t *testing.T) {
	e := NewEngine()
	e.At(1, func() {})
	e.Run(2)
	defer func() {
		if recover() == nil {
			t.Error("scheduling in the past should panic")
		}
	}()
	e.At(1.5, func() {})
}

func TestEngineNegativeDelayPanics(t *testing.T) {
	e := NewEngine()
	defer func() {
		if recover() == nil {
			t.Error("negative delay should panic")
		}
	}()
	e.After(-0.1, func() {})
}

func TestRadioAccountIntegration(t *testing.T) {
	chip := testPlatform().Radio
	r := newRadioAccount(chip)
	r.setState(1, StateRx)    // 1 s of sleep
	r.setState(3, StateTx)    // 2 s of rx
	r.setState(4, StateSleep) // 1 s of tx
	r.finish(10)              // 6 s of sleep

	want := 1*float64(chip.SleepPower) + 2*float64(chip.RxPower) + 1*float64(chip.TxPower) +
		6*float64(chip.SleepPower)
	if diff := r.energy - want; diff > 1e-15 || diff < -1e-15 {
		t.Errorf("energy = %g, want %g", r.energy, want)
	}
	if r.stateTime[StateRx] != 2 || r.stateTime[StateTx] != 1 || r.stateTime[StateSleep] != 7 {
		t.Errorf("state times: %v", r.stateTime)
	}
	if r.ramps != 0 {
		t.Errorf("ramps = %d", r.ramps)
	}
}

func TestRadioAccountRampCharges(t *testing.T) {
	chip := testPlatform().Radio
	r := newRadioAccount(chip)
	r.setState(1, StateRamp)
	r.setState(2, StateRx)
	r.finish(3)
	if r.ramps != 1 {
		t.Errorf("ramps = %d, want 1", r.ramps)
	}
	want := 1*float64(chip.SleepPower) + float64(chip.RampUpEnergy) +
		1*float64(chip.IdlePower) + 1*float64(chip.RxPower)
	if diff := r.energy - want; diff > 1e-15 || diff < -1e-15 {
		t.Errorf("energy = %g, want %g", r.energy, want)
	}
}

func TestRadioAccountBackwardsTimePanics(t *testing.T) {
	r := newRadioAccount(testPlatform().Radio)
	r.setState(5, StateRx)
	defer func() {
		if recover() == nil {
			t.Error("backwards time should panic")
		}
	}()
	r.setState(4, StateTx)
}

func TestRadioStateString(t *testing.T) {
	names := map[RadioState]string{
		StateSleep: "sleep", StateIdle: "idle", StateRamp: "ramp",
		StateRx: "rx", StateTx: "tx",
	}
	for s, want := range names {
		if got := s.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", int(s), got, want)
		}
	}
	if RadioState(99).String() == "" {
		t.Error("unknown state string empty")
	}
}
