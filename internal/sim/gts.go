package sim

import (
	"fmt"
	"math/rand"

	ieee "wsndse/internal/ieee802154"
	"wsndse/internal/numeric"
	"wsndse/internal/units"
)

// packet is one queued MAC frame. The delay of a packet is measured from
// `created` — the instant the frame is handed to the MAC layer — to its
// acknowledged delivery, which is the quantity the Eq. 9 bound (and a
// Castalia-style simulation) speaks about.
type packet struct {
	payloadBytes int
	created      float64
	attempts     int
}

// realCycler is implemented by applications whose device-level cycle count
// differs from the model's characterization (e.g. the CR-sensitive
// compressors). The simulator prefers it over the model-side Usage.
type realCycler interface {
	RealCyclesPerSecond() float64
}

// simNode is the runtime state of one node.
type simNode struct {
	cfg NodeConfig
	idx int

	radio     *radioAccount
	busyUntil float64 // last scheduled radio state change

	phiOut    float64      // B/s
	payload   int          // effective frame payload (per-node override resolved)
	arrival   ArrivalModel // effective traffic model
	startSlot int          // first GTS slot in the superframe
	endSlot   int          // one past the last GTS slot

	queue     []*packet
	queuePeak int

	delays         []float64
	packetsSent    int
	retries        int
	dropped        int
	bytesDelivered int

	extraCycles float64 // beacon + packet processing on the µC

	// block-arrival state
	carryBytes float64
	// queue-length samples at each beacon, for the stability verdict
	queueSamples []int
}

// simulation bundles the run state.
type simulation struct {
	cfg     Config
	eng     *Engine
	rng     *rand.Rand
	nodes   []*simNode
	beacons int

	bi, slot  float64
	guard     float64
	beaconAir float64
}

// Run executes one simulation and returns the per-node results.
func Run(cfg Config) (*Result, error) {
	cfg = cfg.withDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	s := &simulation{
		cfg: cfg,
		eng: NewEngine(),
		rng: rand.New(rand.NewSource(cfg.Seed)),
	}
	s.bi = float64(cfg.Superframe.BeaconInterval())
	s.slot = float64(cfg.Superframe.SlotDuration())
	s.guard = float64(cfg.GuardTime)
	s.beaconAir = float64(ieee.BeaconAirTime(gtsDescriptors(cfg)))

	// Build nodes and lay out the contention-free period: GTSs are
	// allocated from the end of the active portion backwards, in node
	// order, as the standard prescribes.
	nextEnd := ieee.ANumSuperframeSlots
	for i, nc := range cfg.Nodes {
		n := &simNode{
			cfg:     nc,
			idx:     i,
			radio:   newRadioAccount(nc.Platform.Radio),
			phiOut:  float64(nc.App.OutputRate(nc.Platform.InputRate(nc.SampleFreq))),
			payload: nc.payload(cfg.PayloadBytes),
			arrival: nc.arrival(cfg.Arrival),
		}
		n.endSlot = nextEnd
		n.startSlot = nextEnd - nc.Slots
		nextEnd = n.startSlot
		if n.startSlot < ieee.CAPSlots {
			// Validate caps total slots at 7, so the CFP can
			// never eat into the 9 CAP slots; keep the invariant
			// explicit.
			return nil, fmt.Errorf("sim: GTS layout underflow at node %d", i)
		}
		s.nodes = append(s.nodes, n)
	}
	// Traffic generators.
	for _, n := range s.nodes {
		s.startArrivals(n)
	}
	// Superframe chain.
	s.scheduleSuperframe(0)

	dur := float64(cfg.Duration)
	s.eng.Run(dur)

	return s.collect(dur), nil
}

// gtsDescriptors counts the beacon's GTS descriptor list: one per node
// holding at least one slot.
func gtsDescriptors(cfg Config) int {
	t := 0
	for _, n := range cfg.Nodes {
		if n.Slots > 0 {
			t++
		}
	}
	return t
}

// startArrivals schedules the node's traffic process under its effective
// (per-node override or network default) arrival model and payload.
func (s *simulation) startArrivals(n *simNode) {
	switch n.arrival {
	case ArrivalUniform:
		if n.phiOut <= 0 {
			return
		}
		interval := float64(n.payload) / n.phiOut
		var emit func()
		emit = func() {
			now := s.eng.Now()
			n.enqueue(&packet{payloadBytes: n.payload, created: now})
			s.eng.After(interval, emit)
		}
		s.eng.After(interval, emit)
	case ArrivalBlock:
		fs := float64(n.cfg.SampleFreq)
		period := float64(s.cfg.BlockSamples) / fs
		blockBytes := n.phiOut * period
		var emit func()
		emit = func() {
			now := s.eng.Now()
			n.carryBytes += blockBytes
			for n.carryBytes >= float64(n.payload) {
				n.enqueue(&packet{payloadBytes: n.payload, created: now})
				n.carryBytes -= float64(n.payload)
			}
			if whole := int(n.carryBytes); whole > 0 {
				// Ship the block's tail as a short frame rather
				// than letting stale bytes wait for the next
				// block — a real codec flushes block boundaries.
				n.enqueue(&packet{payloadBytes: whole, created: now})
				n.carryBytes -= float64(whole)
			}
			s.eng.After(period, emit)
		}
		s.eng.After(period, emit)
	}
}

func (n *simNode) enqueue(p *packet) {
	n.queue = append(n.queue, p)
	if len(n.queue) > n.queuePeak {
		n.queuePeak = len(n.queue)
	}
}

// setRadio transitions the node's radio, keeping per-node chronology.
func (s *simulation) setRadio(n *simNode, state RadioState) {
	n.radio.setState(s.eng.Now(), state)
}

// scheduleSuperframe arms everything for superframe index sf and chains
// the next one.
func (s *simulation) scheduleSuperframe(sf int) {
	tb := float64(sf) * s.bi // beacon time

	for _, n := range s.nodes {
		ramp := float64(n.cfg.Platform.Radio.RampUpTime)
		wake := tb - s.guard - ramp
		if wake < n.busyUntil {
			wake = n.busyUntil
		}
		rxAt := tb - s.guard
		if rxAt < wake {
			rxAt = wake
		}
		beaconEnd := tb + s.beaconAir
		node := n
		if wake >= s.eng.Now() {
			s.eng.At(wake, func() { s.setRadio(node, StateRamp) })
			s.eng.At(rxAt, func() { s.setRadio(node, StateRx) })
		} else {
			// First superframe: the radio starts cold at t=0.
			s.eng.At(tb, func() { s.setRadio(node, StateRx) })
		}
		s.eng.At(beaconEnd, func() {
			node.extraCycles += s.cfg.BeaconProcCycles
			node.queueSamples = append(node.queueSamples, len(node.queue))
			s.setRadio(node, StateSleep)
		})
		n.busyUntil = beaconEnd

		if n.cfg.Slots > 0 {
			wStart := tb + float64(n.startSlot)*s.slot
			wEnd := tb + float64(n.endSlot)*s.slot
			gtsWake := wStart - ramp
			if gtsWake < n.busyUntil {
				gtsWake = n.busyUntil
			}
			s.eng.At(gtsWake, func() { s.setRadio(node, StateRamp) })
			s.eng.At(wStart, func() { s.txWindow(node, wEnd) })
			n.busyUntil = wEnd
		}
	}

	s.eng.At(tb, func() { s.beacons++ })
	s.eng.At(float64(sf+1)*s.bi-s.bi/2, func() { s.scheduleSuperframe(sf + 1) })
}

// txWindow drains the node's queue inside its GTS [now, wEnd).
func (s *simulation) txWindow(n *simNode, wEnd float64) {
	now := s.eng.Now()
	if len(n.queue) == 0 {
		s.setRadio(n, StateSleep)
		return
	}
	p := n.queue[0]
	frame := float64(ieee.DataFrameAirTime(p.payloadBytes))
	service := float64(ieee.Turnaround()) + frame + float64(ieee.AckAirTime()) +
		float64(ieee.IFS(p.payloadBytes+ieee.MACOverheadBytes))
	if now+service > wEnd {
		// Does not fit in the remaining window; resume next
		// superframe.
		s.setRadio(n, StateSleep)
		return
	}
	// Turnaround, transmit, listen for the acknowledgement, IFS.
	s.setRadio(n, StateIdle)
	s.eng.After(float64(ieee.Turnaround()), func() { s.setRadio(n, StateTx) })
	s.eng.After(float64(ieee.Turnaround())+frame, func() { s.setRadio(n, StateRx) })
	ackDone := float64(ieee.Turnaround()) + frame + float64(ieee.AckAirTime())
	s.eng.After(ackDone, func() {
		n.extraCycles += s.cfg.PacketProcCycles
		delivered := s.rng.Float64() >= s.cfg.PacketErrorRate
		if delivered {
			n.delays = append(n.delays, s.eng.Now()-p.created)
			n.packetsSent++
			n.bytesDelivered += p.payloadBytes
			n.queue = n.queue[1:]
		} else {
			p.attempts++
			if p.attempts > s.cfg.MaxRetries {
				n.dropped++
				n.queue = n.queue[1:]
			} else {
				n.retries++
			}
		}
		s.setRadio(n, StateIdle)
		ifs := float64(ieee.IFS(p.payloadBytes + ieee.MACOverheadBytes))
		s.eng.After(ifs, func() { s.txWindow(n, wEnd) })
	})
}

// collect assembles the result at simulation end.
func (s *simulation) collect(dur float64) *Result {
	res := &Result{
		Duration:    units.Seconds(dur),
		Nodes:       make([]NodeResult, len(s.nodes)),
		BeaconsSent: s.beacons,
		Stable:      true,
	}
	for i, n := range s.nodes {
		n.radio.finish(dur)

		// Microcontroller: application cycles (device-level, with CR
		// sensitivity when available) plus firmware overheads.
		appCycles := s.appCyclesPerSecond(n) * dur
		totalCycles := appCycles + n.extraCycles
		f := float64(n.cfg.MicroFreq)
		activeTime := totalCycles / f
		microE := activeTime * float64(n.cfg.Platform.Micro.ActivePower(n.cfg.MicroFreq))

		// Sensor and memory run the same closed forms as the model:
		// on real hardware these parts have no packet-level dynamics.
		usage := n.cfg.App.Usage(n.cfg.Platform.InputRate(n.cfg.SampleFreq), n.cfg.MicroFreq)
		sensorE := float64(n.cfg.Platform.Sensor.Power(n.cfg.SampleFreq)) * dur
		memE := float64(n.cfg.Platform.Memory.Power(usage.AccessesPerSecond, usage.MemoryBytes)) * dur

		acc := EnergyAccount{
			Sensor: units.Joules(sensorE),
			Micro:  units.Joules(microE),
			Memory: units.Joules(memE),
			Radio:  units.Joules(n.radio.energy),
		}
		acc.Total = acc.Sensor + acc.Micro + acc.Memory + acc.Radio

		stateTime := make(map[RadioState]units.Seconds, len(n.radio.stateTime))
		for st, t := range n.radio.stateTime {
			stateTime[st] = units.Seconds(t)
		}
		nr := NodeResult{
			Name:           n.cfg.Name,
			Energy:         acc,
			Power:          acc.Power(units.Seconds(dur)),
			PacketsSent:    n.packetsSent,
			Retries:        n.retries,
			PacketsDropped: n.dropped,
			BytesDelivered: n.bytesDelivered,
			QueuePeak:      n.queuePeak,
			RadioStateTime: stateTime,
			Ramps:          n.radio.ramps,
		}
		if len(n.delays) > 0 {
			nr.Delay = DelayStats{
				Count: len(n.delays),
				Mean:  units.Seconds(numeric.Mean(n.delays)),
				Max:   units.Seconds(maxOf(n.delays)),
				P95:   units.Seconds(numeric.Percentile(n.delays, 95)),
			}
		}
		if !queueStable(n.queueSamples) {
			res.Stable = false
		}
		res.Nodes[i] = nr
	}
	return res
}

// appCyclesPerSecond prefers the device-level characterization.
func (s *simulation) appCyclesPerSecond(n *simNode) float64 {
	if rc, ok := n.cfg.App.(realCycler); ok {
		return rc.RealCyclesPerSecond()
	}
	usage := n.cfg.App.Usage(n.cfg.Platform.InputRate(n.cfg.SampleFreq), n.cfg.MicroFreq)
	return usage.Duty * float64(n.cfg.MicroFreq)
}

func maxOf(xs []float64) float64 {
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// queueStable compares queue occupancy between the first and last quarter
// of the run: sustained growth means the allocation cannot carry the load.
func queueStable(samples []int) bool {
	if len(samples) < 8 {
		return true // too short to judge
	}
	q := len(samples) / 4
	head := samples[:q]
	tail := samples[len(samples)-q:]
	var hm, tm float64
	for _, v := range head {
		hm += float64(v)
	}
	for _, v := range tail {
		tm += float64(v)
	}
	hm /= float64(len(head))
	tm /= float64(len(tail))
	return tm <= hm+1.5
}

// SlotsFor computes the GTS slots a node needs for a phiOut B/s stream —
// the simulator-side mirror of the model's assignment. Both sides call
// ieee.GTSSlotsFor so the simulated network always matches the modeled
// one.
func SlotsFor(sf ieee.SuperframeConfig, payloadBytes int, phiOut float64) int {
	return ieee.GTSSlotsFor(sf, payloadBytes, phiOut)
}
