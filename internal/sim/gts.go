package sim

import (
	"fmt"
	"math/rand"

	ieee "wsndse/internal/ieee802154"
	"wsndse/internal/numeric"
	"wsndse/internal/units"
)

// packet is one queued MAC frame. The delay of a packet is measured from
// `created` — the instant the frame is handed to the MAC layer — to its
// acknowledged delivery, which is the quantity the Eq. 9 bound (and a
// Castalia-style simulation) speaks about.
type packet struct {
	payloadBytes int
	created      float64
	attempts     int
}

// realCycler is implemented by applications whose device-level cycle count
// differs from the model's characterization (e.g. the CR-sensitive
// compressors). The simulator prefers it over the model-side Usage.
type realCycler interface {
	RealCyclesPerSecond() float64
}

// simNode is the runtime state of one node.
type simNode struct {
	cfg NodeConfig
	idx int

	radio     *radioAccount
	busyUntil float64 // last scheduled radio state change

	phiOut    float64      // B/s
	payload   int          // effective frame payload (per-node override resolved)
	arrival   ArrivalModel // effective traffic model
	startSlot int          // first GTS slot in the superframe
	endSlot   int          // one past the last GTS slot

	// The MAC queue is a value-typed slice drained from qhead, so enqueue
	// and dequeue recycle the same backing array instead of allocating a
	// boxed packet per frame.
	queue     []packet
	qhead     int
	queuePeak int

	delays         []float64
	packetsSent    int
	retries        int
	dropped        int
	bytesDelivered int

	extraCycles float64 // beacon + packet processing on the µC

	// arrival-process state (resolved once in startArrivals)
	interval   float64 // uniform: seconds between frames
	period     float64 // block: seconds between blocks
	blockBytes float64 // block: bytes per block
	carryBytes float64
	// linkIdx is the index of the active LinkPhase; -1 before the first
	// phase starts (the base PER applies). Simulation time is monotone,
	// so the cursor only ever advances.
	linkIdx int
	// queue-length samples at each beacon, for the stability verdict
	queueSamples []int
}

func (n *simNode) queueLen() int { return len(n.queue) - n.qhead }

func (n *simNode) queueHead() *packet { return &n.queue[n.qhead] }

func (n *simNode) popQueue() {
	n.qhead++
	if n.qhead == len(n.queue) {
		n.queue = n.queue[:0]
		n.qhead = 0
	} else if n.qhead > 64 && n.qhead*2 > len(n.queue) {
		// Compact so a queue that never fully drains cannot grow its
		// backing array without bound.
		n.queue = n.queue[:copy(n.queue, n.queue[n.qhead:])]
		n.qhead = 0
	}
}

// simulation bundles the run state.
type simulation struct {
	cfg     Config
	eng     *Engine
	rng     *rand.Rand
	nodes   []*simNode
	beacons int

	bi, slot  float64
	guard     float64
	beaconAir float64
}

// Typed event kinds. Everything the simulation schedules is a typed event
// — state reconstructible from (kind, node, arg) — so the hot loop
// allocates neither closures nor boxed events. Kind 0 stays reserved for
// the engine's At/After closure wrappers.
const (
	evRadio        uint8 = iota + 1 // arg: target RadioState
	evBeaconEnd                     // beacon received: bookkeeping, then sleep
	evTxWindow                      // GTS window (re)entry; arg: window end
	evAckDone                       // ack wait finished; arg: window end
	evBeaconTick                    // coordinator beacon counter (node < 0)
	evSuperframe                    // chain the next superframe; arg: its index
	evArrival                       // uniform traffic: one frame
	evBlockArrival                  // block traffic: one codec block
)

// dispatch routes typed events; it is the engine's installed dispatcher.
func (s *simulation) dispatch(kind uint8, node int32, arg float64) {
	var n *simNode
	if node >= 0 {
		n = s.nodes[node]
	}
	switch kind {
	case evRadio:
		s.setRadio(n, RadioState(int(arg)))
	case evBeaconEnd:
		n.extraCycles += s.cfg.BeaconProcCycles
		n.queueSamples = append(n.queueSamples, n.queueLen())
		s.setRadio(n, StateSleep)
	case evTxWindow:
		s.txWindow(n, arg)
	case evAckDone:
		s.ackDone(n, arg)
	case evBeaconTick:
		s.beacons++
	case evSuperframe:
		s.scheduleSuperframe(int(arg))
	case evArrival:
		n.enqueue(packet{payloadBytes: n.payload, created: s.eng.Now()})
		s.eng.ScheduleAfter(n.interval, evArrival, node, 0)
	case evBlockArrival:
		now := s.eng.Now()
		n.carryBytes += n.blockBytes
		for n.carryBytes >= float64(n.payload) {
			n.enqueue(packet{payloadBytes: n.payload, created: now})
			n.carryBytes -= float64(n.payload)
		}
		if whole := int(n.carryBytes); whole > 0 {
			// Ship the block's tail as a short frame rather than letting
			// stale bytes wait for the next block — a real codec flushes
			// block boundaries.
			n.enqueue(packet{payloadBytes: whole, created: now})
			n.carryBytes -= float64(whole)
		}
		s.eng.ScheduleAfter(n.period, evBlockArrival, node, 0)
	default:
		panic(fmt.Sprintf("sim: unknown event kind %d", kind))
	}
}

// Run executes one simulation and returns the per-node results.
func Run(cfg Config) (*Result, error) {
	cfg = cfg.withDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	s := &simulation{
		cfg: cfg,
		eng: NewEngine(),
		rng: rand.New(rand.NewSource(cfg.Seed)),
	}
	s.eng.SetDispatcher(s.dispatch)
	s.bi = float64(cfg.Superframe.BeaconInterval())
	s.slot = float64(cfg.Superframe.SlotDuration())
	s.guard = float64(cfg.GuardTime)
	s.beaconAir = float64(ieee.BeaconAirTime(gtsDescriptors(cfg)))

	// Build nodes and lay out the contention-free period: GTSs are
	// allocated from the end of the active portion backwards, in node
	// order, as the standard prescribes.
	nextEnd := ieee.ANumSuperframeSlots
	for i, nc := range cfg.Nodes {
		n := &simNode{
			cfg:     nc,
			idx:     i,
			radio:   newRadioAccount(nc.Platform.Radio),
			phiOut:  float64(nc.App.OutputRate(nc.Platform.InputRate(nc.SampleFreq))),
			payload: nc.payload(cfg.PayloadBytes),
			arrival: nc.arrival(cfg.Arrival),
			linkIdx: -1,
		}
		n.endSlot = nextEnd
		n.startSlot = nextEnd - nc.Slots
		nextEnd = n.startSlot
		if n.startSlot < ieee.CAPSlots {
			// Validate caps total slots at 7, so the CFP can
			// never eat into the 9 CAP slots; keep the invariant
			// explicit.
			return nil, fmt.Errorf("sim: GTS layout underflow at node %d", i)
		}
		s.nodes = append(s.nodes, n)
	}
	// Traffic generators.
	for _, n := range s.nodes {
		s.startArrivals(n)
	}
	// Superframe chain.
	s.scheduleSuperframe(0)

	dur := float64(cfg.Duration)
	s.eng.Run(dur)

	return s.collect(dur), nil
}

// gtsDescriptors counts the beacon's GTS descriptor list: one per node
// holding at least one slot.
func gtsDescriptors(cfg Config) int {
	t := 0
	for _, n := range cfg.Nodes {
		if n.Slots > 0 {
			t++
		}
	}
	return t
}

// startArrivals schedules the node's traffic process under its effective
// (per-node override or network default) arrival model and payload.
func (s *simulation) startArrivals(n *simNode) {
	switch n.arrival {
	case ArrivalUniform:
		if n.phiOut <= 0 {
			return
		}
		n.interval = float64(n.payload) / n.phiOut
		s.eng.ScheduleAfter(n.interval, evArrival, int32(n.idx), 0)
	case ArrivalBlock:
		fs := float64(n.cfg.SampleFreq)
		n.period = float64(s.cfg.BlockSamples) / fs
		n.blockBytes = n.phiOut * n.period
		s.eng.ScheduleAfter(n.period, evBlockArrival, int32(n.idx), 0)
	}
}

func (n *simNode) enqueue(p packet) {
	n.queue = append(n.queue, p)
	if n.queueLen() > n.queuePeak {
		n.queuePeak = n.queueLen()
	}
}

// setRadio transitions the node's radio, keeping per-node chronology.
func (s *simulation) setRadio(n *simNode, state RadioState) {
	n.radio.setState(s.eng.Now(), state)
}

// scheduleSuperframe arms everything for superframe index sf and chains
// the next one.
func (s *simulation) scheduleSuperframe(sf int) {
	tb := float64(sf) * s.bi // beacon time

	for _, n := range s.nodes {
		ramp := float64(n.cfg.Platform.Radio.RampUpTime)
		wake := tb - s.guard - ramp
		if wake < n.busyUntil {
			wake = n.busyUntil
		}
		rxAt := tb - s.guard
		if rxAt < wake {
			rxAt = wake
		}
		beaconEnd := tb + s.beaconAir
		ni := int32(n.idx)
		if wake >= s.eng.Now() {
			s.eng.Schedule(wake, evRadio, ni, float64(StateRamp))
			s.eng.Schedule(rxAt, evRadio, ni, float64(StateRx))
		} else {
			// First superframe: the radio starts cold at t=0.
			s.eng.Schedule(tb, evRadio, ni, float64(StateRx))
		}
		s.eng.Schedule(beaconEnd, evBeaconEnd, ni, 0)
		n.busyUntil = beaconEnd

		if n.cfg.Slots > 0 {
			wStart := tb + float64(n.startSlot)*s.slot
			wEnd := tb + float64(n.endSlot)*s.slot
			gtsWake := wStart - ramp
			if gtsWake < n.busyUntil {
				gtsWake = n.busyUntil
			}
			s.eng.Schedule(gtsWake, evRadio, ni, float64(StateRamp))
			s.eng.Schedule(wStart, evTxWindow, ni, wEnd)
			n.busyUntil = wEnd
		}
	}

	s.eng.Schedule(tb, evBeaconTick, -1, 0)
	s.eng.Schedule(float64(sf+1)*s.bi-s.bi/2, evSuperframe, -1, float64(sf+1))
}

// txWindow drains the node's queue inside its GTS [now, wEnd). The service
// sequence — turnaround, transmit, listen for the acknowledgement, IFS —
// is scheduled as typed events; the in-flight frame stays at the head of
// the queue until its ack verdict, so evAckDone needs no captured state.
func (s *simulation) txWindow(n *simNode, wEnd float64) {
	now := s.eng.Now()
	if n.queueLen() == 0 {
		s.setRadio(n, StateSleep)
		return
	}
	p := n.queueHead()
	frame := float64(ieee.DataFrameAirTime(p.payloadBytes))
	turn := float64(ieee.Turnaround())
	ack := float64(ieee.AckAirTime())
	service := turn + frame + ack + float64(ieee.IFS(p.payloadBytes+ieee.MACOverheadBytes))
	if now+service > wEnd {
		// Does not fit in the remaining window; resume next
		// superframe.
		s.setRadio(n, StateSleep)
		return
	}
	s.setRadio(n, StateIdle)
	ni := int32(n.idx)
	s.eng.Schedule(now+turn, evRadio, ni, float64(StateTx))
	s.eng.Schedule(now+turn+frame, evRadio, ni, float64(StateRx))
	s.eng.Schedule(now+turn+frame+ack, evAckDone, ni, wEnd)
}

// ackDone settles the head frame's fate once its acknowledgement window
// closes, then chains the next service attempt after the interframe space.
func (s *simulation) ackDone(n *simNode, wEnd float64) {
	p := n.queueHead()
	payload := p.payloadBytes
	n.extraCycles += s.cfg.PacketProcCycles
	delivered := s.rng.Float64() >= s.perAt(n)
	if delivered {
		n.delays = append(n.delays, s.eng.Now()-p.created)
		n.packetsSent++
		n.bytesDelivered += payload
		n.popQueue()
	} else {
		p.attempts++
		if p.attempts > s.cfg.MaxRetries {
			n.dropped++
			n.popQueue()
		} else {
			n.retries++
		}
	}
	s.setRadio(n, StateIdle)
	ifs := float64(ieee.IFS(payload + ieee.MACOverheadBytes))
	s.eng.ScheduleAfter(ifs, evTxWindow, int32(n.idx), wEnd)
}

// perAt resolves the node's effective packet error rate at the current
// simulation time: the base channel PER until the first link phase starts,
// then the active phase's PER. The rng draw in ackDone happens for every
// attempt regardless of the schedule, so an all-equal schedule is
// bit-identical to no schedule at all.
func (s *simulation) perAt(n *simNode) float64 {
	link := n.cfg.Link
	if len(link) == 0 {
		return s.cfg.PacketErrorRate
	}
	now := s.eng.Now()
	for n.linkIdx+1 < len(link) && float64(link[n.linkIdx+1].Start) <= now {
		n.linkIdx++
	}
	if n.linkIdx < 0 {
		return s.cfg.PacketErrorRate
	}
	return link[n.linkIdx].PER
}

// collect assembles the result at simulation end.
func (s *simulation) collect(dur float64) *Result {
	res := &Result{
		Duration:    units.Seconds(dur),
		Nodes:       make([]NodeResult, len(s.nodes)),
		BeaconsSent: s.beacons,
		Events:      s.eng.Dispatched(),
		Stable:      true,
	}
	for i, n := range s.nodes {
		n.radio.finish(dur)

		// Microcontroller: application cycles (device-level, with CR
		// sensitivity when available) plus firmware overheads.
		appCycles := s.appCyclesPerSecond(n) * dur
		totalCycles := appCycles + n.extraCycles
		f := float64(n.cfg.MicroFreq)
		activeTime := totalCycles / f
		microE := activeTime * float64(n.cfg.Platform.Micro.ActivePower(n.cfg.MicroFreq))

		// Sensor and memory run the same closed forms as the model:
		// on real hardware these parts have no packet-level dynamics.
		usage := n.cfg.App.Usage(n.cfg.Platform.InputRate(n.cfg.SampleFreq), n.cfg.MicroFreq)
		sensorE := float64(n.cfg.Platform.Sensor.Power(n.cfg.SampleFreq)) * dur
		memE := float64(n.cfg.Platform.Memory.Power(usage.AccessesPerSecond, usage.MemoryBytes)) * dur

		acc := EnergyAccount{
			Sensor: units.Joules(sensorE),
			Micro:  units.Joules(microE),
			Memory: units.Joules(memE),
			Radio:  units.Joules(n.radio.energy),
		}
		acc.Total = acc.Sensor + acc.Micro + acc.Memory + acc.Radio

		stateTime := make(map[RadioState]units.Seconds, numRadioStates)
		for st, t := range n.radio.stateTime {
			if t != 0 {
				stateTime[RadioState(st)] = units.Seconds(t)
			}
		}
		nr := NodeResult{
			Name:           n.cfg.Name,
			Energy:         acc,
			Power:          acc.Power(units.Seconds(dur)),
			PacketsSent:    n.packetsSent,
			Retries:        n.retries,
			PacketsDropped: n.dropped,
			BytesDelivered: n.bytesDelivered,
			QueuePeak:      n.queuePeak,
			RadioStateTime: stateTime,
			Ramps:          n.radio.ramps,
		}
		if len(n.delays) > 0 {
			nr.Delay = DelayStats{
				Count: len(n.delays),
				Mean:  units.Seconds(numeric.Mean(n.delays)),
				Max:   units.Seconds(maxOf(n.delays)),
				P95:   units.Seconds(numeric.Percentile(n.delays, 95)),
			}
		}
		if !queueStable(n.queueSamples) {
			res.Stable = false
		}
		res.Nodes[i] = nr
	}
	return res
}

// appCyclesPerSecond prefers the device-level characterization.
func (s *simulation) appCyclesPerSecond(n *simNode) float64 {
	if rc, ok := n.cfg.App.(realCycler); ok {
		return rc.RealCyclesPerSecond()
	}
	usage := n.cfg.App.Usage(n.cfg.Platform.InputRate(n.cfg.SampleFreq), n.cfg.MicroFreq)
	return usage.Duty * float64(n.cfg.MicroFreq)
}

func maxOf(xs []float64) float64 {
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// queueStable compares queue occupancy between the first and last quarter
// of the run: sustained growth means the allocation cannot carry the load.
func queueStable(samples []int) bool {
	if len(samples) < 8 {
		return true // too short to judge
	}
	q := len(samples) / 4
	head := samples[:q]
	tail := samples[len(samples)-q:]
	var hm, tm float64
	for _, v := range head {
		hm += float64(v)
	}
	for _, v := range tail {
		tm += float64(v)
	}
	hm /= float64(len(head))
	tm /= float64(len(tail))
	return tm <= hm+1.5
}

// SlotsFor computes the GTS slots a node needs for a phiOut B/s stream —
// the simulator-side mirror of the model's assignment. Both sides call
// ieee.GTSSlotsFor so the simulated network always matches the modeled
// one.
func SlotsFor(sf ieee.SuperframeConfig, payloadBytes int, phiOut float64) int {
	return ieee.GTSSlotsFor(sf, payloadBytes, phiOut)
}
