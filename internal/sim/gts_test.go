package sim

import (
	"math"
	"testing"

	"wsndse/internal/app"
	ieee "wsndse/internal/ieee802154"
	"wsndse/internal/numeric"
	"wsndse/internal/platform"
	"wsndse/internal/units"
)

func testPlatform() platform.Platform { return platform.Shimmer() }

var simTestPoly = numeric.Poly{30, -100, 120}

func testApp(t *testing.T, kind string, cr float64) app.Application {
	t.Helper()
	var profile app.Profile
	switch kind {
	case "dwt":
		profile = app.DWTProfile()
	case "cs":
		profile = app.CSProfile()
	}
	a, err := app.NewCompression(profile, cr, simTestPoly)
	if err != nil {
		t.Fatal(err)
	}
	return a
}

// testConfig builds a case-study-like network: N nodes, half DWT half CS,
// minimal GTS allocations from SlotsFor.
func testConfig(t *testing.T, n int, cr float64, fuc units.Hertz, bo, so int) Config {
	t.Helper()
	sf := ieee.SuperframeConfig{BeaconOrder: bo, SuperframeOrder: so}
	payload := 48
	nodes := make([]NodeConfig, n)
	for i := range nodes {
		kind := "dwt"
		if i >= n/2 {
			kind = "cs"
		}
		a := testApp(t, kind, cr)
		p := testPlatform()
		phiOut := float64(a.OutputRate(p.InputRate(250)))
		nodes[i] = NodeConfig{
			Name:       kind,
			Platform:   p,
			App:        a,
			SampleFreq: 250,
			MicroFreq:  fuc,
			Slots:      SlotsFor(sf, payload, phiOut),
		}
	}
	return Config{
		Superframe:   sf,
		PayloadBytes: payload,
		Nodes:        nodes,
		Duration:     20,
		Seed:         1,
	}
}

func TestValidateConfig(t *testing.T) {
	good := testConfig(t, 2, 0.23, 8e6, 3, 2)
	if err := good.Validate(); err != nil {
		t.Fatalf("good config rejected: %v", err)
	}
	cases := []func(*Config){
		func(c *Config) { c.PayloadBytes = 0 },
		func(c *Config) { c.PayloadBytes = 200 },
		func(c *Config) { c.Nodes = nil },
		func(c *Config) { c.Duration = 0 },
		func(c *Config) { c.PacketErrorRate = 1 },
		func(c *Config) { c.Nodes[0].App = nil },
		func(c *Config) { c.Nodes[0].SampleFreq = 0 },
		func(c *Config) { c.Nodes[0].Slots = -1 },
		func(c *Config) { c.Nodes[0].Slots = 8 },
		func(c *Config) { c.Superframe.SuperframeOrder = 99 },
	}
	for i, mutate := range cases {
		c := testConfig(t, 2, 0.23, 8e6, 3, 2)
		mutate(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
}

func TestRunBasicStability(t *testing.T) {
	cfg := testConfig(t, 6, 0.23, 8e6, 3, 2)
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Stable {
		t.Error("minimal-allocation network should be stable")
	}
	wantBeacons := 162 // 20 s / 122.88 ms per beacon interval
	if res.BeaconsSent < wantBeacons-1 {
		t.Errorf("beacons = %d, want ≈%d", res.BeaconsSent, wantBeacons)
	}
	for i, n := range res.Nodes {
		if n.PacketsSent == 0 {
			t.Errorf("node %d sent nothing", i)
		}
		if n.PacketsDropped != 0 || n.Retries != 0 {
			t.Errorf("node %d: drops/retries on a clean channel", i)
		}
		if n.Energy.Total <= 0 {
			t.Errorf("node %d: energy %v", i, n.Energy.Total)
		}
		// Throughput: delivered bytes ≈ φ_out × duration (within a
		// couple of packets of slack).
		phiOut := 375 * 0.23
		want := phiOut * 20
		if math.Abs(float64(n.BytesDelivered)-want) > 3*80 {
			t.Errorf("node %d delivered %d B, want ≈%.0f", i, n.BytesDelivered, want)
		}
	}
}

func TestRunDeterministic(t *testing.T) {
	cfg := testConfig(t, 4, 0.29, 8e6, 3, 2)
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Nodes {
		if a.Nodes[i].Energy.Total != b.Nodes[i].Energy.Total {
			t.Errorf("node %d: energies differ between identical runs", i)
		}
		if a.Nodes[i].Delay.Max != b.Nodes[i].Delay.Max {
			t.Errorf("node %d: delays differ between identical runs", i)
		}
	}
}

func TestRunDelaysBoundedUnderUniformArrivals(t *testing.T) {
	// Under the paper's uniform-rate assumption, the worst delay stays
	// within roughly one beacon interval plus a service time.
	cfg := testConfig(t, 6, 0.23, 8e6, 3, 2)
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	bi := float64(cfg.Superframe.BeaconInterval())
	for i, n := range res.Nodes {
		if n.Delay.Count == 0 {
			t.Fatalf("node %d has no delay samples", i)
		}
		if float64(n.Delay.Max) > 1.5*bi {
			t.Errorf("node %d: max delay %v exceeds 1.5×BI (%v)",
				i, n.Delay.Max, units.Seconds(bi))
		}
		if n.Delay.Mean <= 0 || n.Delay.Max < n.Delay.Mean || n.Delay.P95 > n.Delay.Max {
			t.Errorf("node %d: inconsistent delay stats %+v", i, n.Delay)
		}
	}
}

func TestRunBlockArrivalsWorseDelays(t *testing.T) {
	uni := testConfig(t, 4, 0.29, 8e6, 3, 2)
	res1, err := Run(uni)
	if err != nil {
		t.Fatal(err)
	}
	blk := testConfig(t, 4, 0.29, 8e6, 3, 2)
	blk.Arrival = ArrivalBlock
	res2, err := Run(blk)
	if err != nil {
		t.Fatal(err)
	}
	// A whole block arriving at once must queue behind the per-
	// superframe GTS capacity: worst-case delay grows substantially.
	for i := range res1.Nodes {
		if res2.Nodes[i].Delay.Max <= res1.Nodes[i].Delay.Max {
			t.Errorf("node %d: block arrivals should worsen max delay (%v vs %v)",
				i, res2.Nodes[i].Delay.Max, res1.Nodes[i].Delay.Max)
		}
	}
}

func TestRunPacketErrors(t *testing.T) {
	cfg := testConfig(t, 2, 0.23, 8e6, 3, 2)
	cfg.PacketErrorRate = 0.2
	cfg.Duration = 30
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	totalRetries := 0
	for _, n := range res.Nodes {
		totalRetries += n.Retries
		// With retries, deliveries continue.
		if n.PacketsSent == 0 {
			t.Error("no deliveries despite retries")
		}
	}
	if totalRetries == 0 {
		t.Error("20% loss must cause retries")
	}
	// Drops are rare with 3 retries at 20% loss (0.2⁴ ≈ 0.16%).
	for i, n := range res.Nodes {
		if n.PacketsDropped > n.PacketsSent/20 {
			t.Errorf("node %d: implausibly many drops %d/%d", i, n.PacketsDropped, n.PacketsSent)
		}
	}
}

func TestRunUnderAllocatedIsUnstable(t *testing.T) {
	// Give a heavy stream a single slot when it needs more: queue grows.
	sf := ieee.SuperframeConfig{BeaconOrder: 5, SuperframeOrder: 3}
	a := testApp(t, "dwt", 0.38)
	p := testPlatform()
	phiOut := float64(a.OutputRate(p.InputRate(250)))
	need := SlotsFor(sf, 48, phiOut)
	if need < 2 {
		t.Skipf("config needs only %d slots; pick a heavier one", need)
	}
	cfg := Config{
		Superframe:   sf,
		PayloadBytes: 48,
		Nodes: []NodeConfig{{
			Name: "starved", Platform: p, App: a,
			SampleFreq: 250, MicroFreq: 8e6, Slots: 1,
		}},
		Duration: 60,
		Seed:     3,
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stable {
		t.Error("under-allocated node should be flagged unstable")
	}
}

func TestRadioStateTimesSumToDuration(t *testing.T) {
	cfg := testConfig(t, 3, 0.23, 8e6, 3, 2)
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i, n := range res.Nodes {
		var sum float64
		for _, d := range n.RadioStateTime {
			sum += float64(d)
		}
		if math.Abs(sum-float64(cfg.Duration)) > 1e-9 {
			t.Errorf("node %d: state times sum to %g, want %g", i, sum, float64(cfg.Duration))
		}
		// A duty-cycled node sleeps most of the time.
		if float64(n.RadioStateTime[StateSleep]) < 0.5*float64(cfg.Duration) {
			t.Errorf("node %d sleeps only %v of %v", i, n.RadioStateTime[StateSleep], cfg.Duration)
		}
		if n.Ramps == 0 {
			t.Errorf("node %d never ramped", i)
		}
	}
}

func TestSlotsFor(t *testing.T) {
	sf := ieee.SuperframeConfig{BeaconOrder: 2, SuperframeOrder: 2}
	if got := SlotsFor(sf, 80, 0); got != 0 {
		t.Errorf("zero stream needs %d slots", got)
	}
	// Monotone in the stream rate.
	prev := 0
	for _, phi := range []float64{64, 143, 375, 750} {
		k := SlotsFor(sf, 80, phi)
		if k < prev {
			t.Errorf("slots for %g B/s = %d, less than lighter stream", phi, k)
		}
		prev = k
	}
	// The protocol floor: even a trickle needs a window fitting one
	// whole packet service.
	k := SlotsFor(sf, 114, 1)
	service := float64(ieee.Turnaround()) + float64(ieee.DataFrameAirTime(114)) +
		float64(ieee.AckAirTime()) + float64(ieee.IFS(114+13))
	if float64(k)*float64(sf.SlotDuration()) < service {
		t.Errorf("window of %d slots cannot fit one packet", k)
	}
}

func TestRunEnergyScalesWithTraffic(t *testing.T) {
	lo := testConfig(t, 2, 0.17, 8e6, 3, 2)
	hi := testConfig(t, 2, 0.38, 8e6, 3, 2)
	rlo, err := Run(lo)
	if err != nil {
		t.Fatal(err)
	}
	rhi, err := Run(hi)
	if err != nil {
		t.Fatal(err)
	}
	for i := range rlo.Nodes {
		if rhi.Nodes[i].Energy.Radio <= rlo.Nodes[i].Energy.Radio {
			t.Errorf("node %d: radio energy should grow with CR", i)
		}
	}
}

func TestArrivalModelString(t *testing.T) {
	if ArrivalUniform.String() != "uniform" || ArrivalBlock.String() != "block" {
		t.Error("arrival model names")
	}
	if ArrivalModel(9).String() == "" {
		t.Error("unknown arrival name empty")
	}
}
