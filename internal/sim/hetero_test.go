package sim

import (
	"reflect"
	"testing"

	"wsndse/internal/app"
	ieee "wsndse/internal/ieee802154"
	"wsndse/internal/platform"
)

// heteroConfig builds a two-node star: one full-frame uniform streamer and
// one short-frame node, optionally bursty.
func heteroConfig(nodePayload int, nodeArrival ArrivalModel) Config {
	sf := ieee.SuperframeConfig{BeaconOrder: 3, SuperframeOrder: 2}
	mk := func(name string, payloadOverride int, arrival ArrivalModel) NodeConfig {
		payload := payloadOverride
		if payload == 0 {
			payload = 48
		}
		return NodeConfig{
			Name:         name,
			Platform:     platform.Shimmer(),
			App:          app.Passthrough{},
			SampleFreq:   60, // φ_out = 90 B/s
			MicroFreq:    8e6,
			Slots:        SlotsFor(sf, payload, 90),
			PayloadBytes: payloadOverride,
			Arrival:      arrival,
		}
	}
	return Config{
		Superframe:   sf,
		PayloadBytes: 48,
		Nodes: []NodeConfig{
			mk("full", 0, ArrivalDefault),
			mk("short", nodePayload, nodeArrival),
		},
		Duration: 30,
		Seed:     1,
	}
}

func TestPerNodePayloadOverride(t *testing.T) {
	res, err := Run(heteroConfig(16, ArrivalDefault))
	if err != nil {
		t.Fatal(err)
	}
	full, short := res.Nodes[0], res.Nodes[1]
	if full.PacketsSent == 0 || short.PacketsSent == 0 {
		t.Fatalf("both nodes must deliver packets: %+v, %+v", full, short)
	}
	// Same stream, 3× smaller frames: strictly more packets, and the
	// per-packet overhead shows up as more radio energy.
	if short.PacketsSent <= full.PacketsSent {
		t.Errorf("16B node sent %d packets, 48B node %d — expected more short frames",
			short.PacketsSent, full.PacketsSent)
	}
	if short.Energy.Radio <= full.Energy.Radio {
		t.Errorf("16B node radio %v not above 48B node %v", short.Energy.Radio, full.Energy.Radio)
	}
	// Delivered byte totals stay within one frame of the offered load.
	if diff := full.BytesDelivered - short.BytesDelivered; diff > 48 || diff < -48 {
		t.Errorf("byte totals diverge: full %dB vs short %dB", full.BytesDelivered, short.BytesDelivered)
	}
}

func TestPerNodeArrivalOverride(t *testing.T) {
	cfg := heteroConfig(0, ArrivalBlock)
	cfg.BlockSamples = 256
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	uniform, bursty := res.Nodes[0], res.Nodes[1]
	if bursty.PacketsSent == 0 {
		t.Fatal("bursty node delivered nothing")
	}
	// A block release queues several frames at once; the uniform node
	// never holds more than a couple.
	if bursty.QueuePeak <= uniform.QueuePeak {
		t.Errorf("block-arrival queue peak %d not above uniform peak %d",
			bursty.QueuePeak, uniform.QueuePeak)
	}
}

func TestArrivalDefaultInherits(t *testing.T) {
	// ArrivalDefault on the node and ArrivalUniform explicitly must be
	// bit-identical runs.
	a, err := Run(heteroConfig(0, ArrivalDefault))
	if err != nil {
		t.Fatal(err)
	}
	explicit := heteroConfig(0, ArrivalUniform)
	b, err := Run(explicit)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Error("ArrivalDefault run differs from explicit ArrivalUniform run")
	}
}

func TestValidateRejectsBadOverrides(t *testing.T) {
	bad := heteroConfig(0, ArrivalDefault)
	bad.Nodes[1].PayloadBytes = ieee.MaxDataPayload + 1
	if _, err := Run(bad); err == nil {
		t.Error("oversized per-node payload accepted")
	}
	bad = heteroConfig(0, ArrivalDefault)
	bad.Nodes[1].Arrival = ArrivalModel(99)
	if _, err := Run(bad); err == nil {
		t.Error("unknown per-node arrival model accepted")
	}
	bad = heteroConfig(0, ArrivalDefault)
	bad.Arrival = ArrivalModel(99)
	if _, err := Run(bad); err == nil {
		t.Error("unknown network arrival model accepted")
	}
}
