package sim

import (
	"reflect"
	"strings"
	"testing"

	"wsndse/internal/app"
	ieee "wsndse/internal/ieee802154"
	"wsndse/internal/platform"
)

// linkConfig builds a two-node star where the second node carries the
// given link schedule.
func linkConfig(link []LinkPhase) Config {
	sf := ieee.SuperframeConfig{BeaconOrder: 3, SuperframeOrder: 2}
	mk := func(name string, link []LinkPhase) NodeConfig {
		return NodeConfig{
			Name:       name,
			Platform:   platform.Shimmer(),
			App:        app.Passthrough{},
			SampleFreq: 60, // φ_out = 90 B/s
			MicroFreq:  8e6,
			Slots:      SlotsFor(sf, 48, 90),
			Link:       link,
		}
	}
	return Config{
		Superframe:   sf,
		PayloadBytes: 48,
		Nodes: []NodeConfig{
			mk("fixed", nil),
			mk("mobile", link),
		},
		Duration: 60,
		Seed:     1,
	}
}

// TestLinkScheduleDegradesMobileNode runs a relay that walks out of range
// mid-run: a clean link, then a heavily lossy phase, then recovery. Only
// the scheduled node should see retries, and it must deliver fewer frames
// than its clean twin.
func TestLinkScheduleDegradesMobileNode(t *testing.T) {
	lossy := []LinkPhase{
		{Start: 0, PER: 0},
		{Start: 20, PER: 0.6},
		{Start: 40, PER: 0},
	}
	res, err := Run(linkConfig(lossy))
	if err != nil {
		t.Fatal(err)
	}
	fixed, mobile := res.Nodes[0], res.Nodes[1]
	if fixed.Retries != 0 || fixed.PacketsDropped != 0 {
		t.Errorf("clean node saw %d retries, %d drops", fixed.Retries, fixed.PacketsDropped)
	}
	if mobile.Retries == 0 {
		t.Error("mobile node crossed a 60% loss phase without a single retry")
	}
	if mobile.PacketsSent >= fixed.PacketsSent {
		t.Errorf("mobile delivered %d frames, clean twin %d — loss phase should cost deliveries",
			mobile.PacketsSent, fixed.PacketsSent)
	}

	clean, err := Run(linkConfig(nil))
	if err != nil {
		t.Fatal(err)
	}
	if clean.Nodes[1].PacketsSent != fixed.PacketsSent {
		t.Errorf("unscheduled twin delivered %d, expected %d",
			clean.Nodes[1].PacketsSent, fixed.PacketsSent)
	}
}

// TestAllZeroLinkScheduleIsIdentity pins the determinism contract: a
// schedule whose every phase matches the base PER consumes the rng
// identically, so results are bit-identical to running with no schedule.
func TestAllZeroLinkScheduleIsIdentity(t *testing.T) {
	with, err := Run(linkConfig([]LinkPhase{{Start: 0, PER: 0}, {Start: 30, PER: 0}}))
	if err != nil {
		t.Fatal(err)
	}
	without, err := Run(linkConfig(nil))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(with, without) {
		t.Fatal("all-zero link schedule changed the simulation result")
	}
}

// TestLinkBaseBeforeFirstPhase documents the pre-phase semantics: until
// the first phase starts the node runs at the config-level PER.
func TestLinkBaseBeforeFirstPhase(t *testing.T) {
	cfg := linkConfig([]LinkPhase{{Start: 1e6, PER: 0.9}}) // never reached
	cfg.PacketErrorRate = 0
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Nodes[1].Retries != 0 {
		t.Errorf("phase beyond the run's end caused %d retries", res.Nodes[1].Retries)
	}
}

func TestValidateLink(t *testing.T) {
	cases := []struct {
		name string
		link []LinkPhase
		want string // "" means valid
	}{
		{"empty", nil, ""},
		{"single", []LinkPhase{{Start: 0, PER: 0.1}}, ""},
		{"ascending", []LinkPhase{{Start: 0, PER: 0}, {Start: 5, PER: 0.5}}, ""},
		{"negative start", []LinkPhase{{Start: -1, PER: 0}}, "negative time"},
		{"non-ascending", []LinkPhase{{Start: 5, PER: 0}, {Start: 5, PER: 0.1}}, "not after"},
		{"PER at 1", []LinkPhase{{Start: 0, PER: 1}}, "out of [0,1)"},
		{"negative PER", []LinkPhase{{Start: 0, PER: -0.1}}, "out of [0,1)"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := ValidateLink(tc.link)
			if tc.want == "" {
				if err != nil {
					t.Fatalf("valid schedule rejected: %v", err)
				}
				return
			}
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %v does not mention %q", err, tc.want)
			}
		})
	}
}
