// Package units provides thin typed wrappers for the physical quantities
// used throughout the library: time, frequency, energy, power and data
// rates.
//
// All model arithmetic in this repository is per-second normalized (the
// paper expresses every flow in bytes per second and every energy in
// joules per second), so the two quantities that appear most often are
// BytesPerSecond and Watts. The types are plain float64 definitions:
// they cost nothing at runtime but make public signatures self-documenting
// and catch unit mix-ups at compile time.
package units

import "fmt"

// Seconds is a duration expressed in seconds.
type Seconds float64

// Hertz is a frequency in cycles per second.
type Hertz float64

// Joules is an amount of energy.
type Joules float64

// Watts is power, i.e. joules per second. The paper writes per-second
// energies such as E_node in mJ/s, which is the same dimension.
type Watts float64

// BytesPerSecond is a data stream rate at the application or MAC level.
type BytesPerSecond float64

// BitsPerSecond is a physical-layer line rate.
type BitsPerSecond float64

// Bytes is an amount of data.
type Bytes float64

// Convenient scale constants.
const (
	Millisecond Seconds = 1e-3
	Microsecond Seconds = 1e-6

	Kilohertz Hertz = 1e3
	Megahertz Hertz = 1e6

	Millijoule Joules = 1e-3
	Microjoule Joules = 1e-6
	Nanojoule  Joules = 1e-9
	Picojoule  Joules = 1e-12

	Milliwatt Watts = 1e-3
	Microwatt Watts = 1e-6
	Nanowatt  Watts = 1e-9
)

// String formats the duration with an SI prefix chosen for readability.
func (s Seconds) String() string {
	switch {
	case s == 0:
		return "0s"
	case abs(float64(s)) < 1e-6:
		return fmt.Sprintf("%.3gns", float64(s)*1e9)
	case abs(float64(s)) < 1e-3:
		return fmt.Sprintf("%.3gµs", float64(s)*1e6)
	case abs(float64(s)) < 1:
		return fmt.Sprintf("%.4gms", float64(s)*1e3)
	default:
		return fmt.Sprintf("%.4gs", float64(s))
	}
}

// String formats the frequency with an SI prefix.
func (h Hertz) String() string {
	switch {
	case abs(float64(h)) >= 1e6:
		return fmt.Sprintf("%.4gMHz", float64(h)/1e6)
	case abs(float64(h)) >= 1e3:
		return fmt.Sprintf("%.4gkHz", float64(h)/1e3)
	default:
		return fmt.Sprintf("%.4gHz", float64(h))
	}
}

// String formats the energy with an SI prefix.
func (j Joules) String() string {
	switch {
	case j == 0:
		return "0J"
	case abs(float64(j)) < 1e-9:
		return fmt.Sprintf("%.3gpJ", float64(j)*1e12)
	case abs(float64(j)) < 1e-6:
		return fmt.Sprintf("%.3gnJ", float64(j)*1e9)
	case abs(float64(j)) < 1e-3:
		return fmt.Sprintf("%.3gµJ", float64(j)*1e6)
	case abs(float64(j)) < 1:
		return fmt.Sprintf("%.4gmJ", float64(j)*1e3)
	default:
		return fmt.Sprintf("%.4gJ", float64(j))
	}
}

// String formats the power with an SI prefix. The paper reports node
// consumptions in mJ/s, i.e. milliwatts.
func (w Watts) String() string {
	switch {
	case w == 0:
		return "0W"
	case abs(float64(w)) < 1e-6:
		return fmt.Sprintf("%.3gnW", float64(w)*1e9)
	case abs(float64(w)) < 1e-3:
		return fmt.Sprintf("%.3gµW", float64(w)*1e6)
	case abs(float64(w)) < 1:
		return fmt.Sprintf("%.4gmW", float64(w)*1e3)
	default:
		return fmt.Sprintf("%.4gW", float64(w))
	}
}

// String formats the rate in B/s, kB/s, etc.
func (r BytesPerSecond) String() string {
	switch {
	case abs(float64(r)) >= 1e6:
		return fmt.Sprintf("%.4gMB/s", float64(r)/1e6)
	case abs(float64(r)) >= 1e3:
		return fmt.Sprintf("%.4gkB/s", float64(r)/1e3)
	default:
		return fmt.Sprintf("%.4gB/s", float64(r))
	}
}

// String formats the line rate in bit/s, kbit/s, etc.
func (r BitsPerSecond) String() string {
	switch {
	case abs(float64(r)) >= 1e6:
		return fmt.Sprintf("%.4gMbit/s", float64(r)/1e6)
	case abs(float64(r)) >= 1e3:
		return fmt.Sprintf("%.4gkbit/s", float64(r)/1e3)
	default:
		return fmt.Sprintf("%.4gbit/s", float64(r))
	}
}

// Bits converts a byte count to bits.
func (b Bytes) Bits() float64 { return float64(b) * 8 }

// PerSecond divides an energy by a duration, yielding average power.
func (j Joules) PerSecond(d Seconds) Watts {
	if d == 0 {
		return 0
	}
	return Watts(float64(j) / float64(d))
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
