package units

import (
	"strings"
	"testing"
)

func TestSecondsString(t *testing.T) {
	cases := []struct {
		in   Seconds
		want string
	}{
		{0, "0s"},
		{1.5, "1.5s"},
		{15.36e-3, "15.36ms"},
		{Millisecond, "1ms"},
		{320 * Microsecond, "320µs"},
		{12e-9, "12ns"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("Seconds(%g).String() = %q, want %q", float64(c.in), got, c.want)
		}
	}
}

func TestHertzString(t *testing.T) {
	if got := (8 * Megahertz).String(); got != "8MHz" {
		t.Errorf("8 MHz = %q", got)
	}
	if got := Hertz(250).String(); got != "250Hz" {
		t.Errorf("250 Hz = %q", got)
	}
	if got := (62.5 * Kilohertz).String(); got != "62.5kHz" {
		t.Errorf("62.5 kHz = %q", got)
	}
}

func TestJoulesString(t *testing.T) {
	cases := []struct {
		in   Joules
		want string
	}{
		{0, "0J"},
		{2.5, "2.5J"},
		{3 * Millijoule, "3mJ"},
		{7 * Microjoule, "7µJ"},
		{42 * Nanojoule, "42nJ"},
		{9 * Picojoule, "9pJ"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("Joules(%g).String() = %q, want %q", float64(c.in), got, c.want)
		}
	}
}

func TestWattsString(t *testing.T) {
	if got := (5.2 * Milliwatt).String(); got != "5.2mW" {
		t.Errorf("5.2 mW = %q", got)
	}
	if got := (52 * Microwatt).String(); got != "52µW" {
		t.Errorf("52 µW = %q", got)
	}
	if got := Watts(0).String(); got != "0W" {
		t.Errorf("0 W = %q", got)
	}
	if got := Watts(1.5).String(); got != "1.5W" {
		t.Errorf("1.5 W = %q", got)
	}
}

func TestRateStrings(t *testing.T) {
	if got := BytesPerSecond(375).String(); got != "375B/s" {
		t.Errorf("375 B/s = %q", got)
	}
	if got := BytesPerSecond(2_000).String(); !strings.HasSuffix(got, "kB/s") {
		t.Errorf("2 kB/s = %q", got)
	}
	if got := BitsPerSecond(250_000).String(); got != "250kbit/s" {
		t.Errorf("250 kbit/s = %q", got)
	}
	if got := BitsPerSecond(2e6).String(); got != "2Mbit/s" {
		t.Errorf("2 Mbit/s = %q", got)
	}
}

func TestBytesBits(t *testing.T) {
	if got := Bytes(13).Bits(); got != 104 {
		t.Errorf("13 bytes = %g bits, want 104", got)
	}
}

func TestJoulesPerSecond(t *testing.T) {
	if got := Joules(6).PerSecond(2); got != 3 {
		t.Errorf("6J over 2s = %v, want 3W", got)
	}
	if got := Joules(6).PerSecond(0); got != 0 {
		t.Errorf("zero duration should yield 0, got %v", got)
	}
}
